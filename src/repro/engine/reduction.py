"""Symmetry reduction: orbit canonicalization of composed states.

Explicit-state verification of the Figure 2 product explores many
states that differ only by a permutation of *symmetric* processors,
blocks, or data values — if processors 1 and 2 are interchangeable in
the protocol, then every reachable joint state has a mirror image
under swapping them, and exploring both is pure waste.  This module
quotients the search by those permutations, Murphi-scalarset style:

* a :class:`SymmetrySpec` *declares* how a protocol's state tuple is
  indexed by the three sorts (``proc`` / ``block`` / ``value``) and
  how its storage locations are numbered over them — declarations,
  not code, so the spec cannot move data the protocol doesn't;
* :func:`build_reduction` turns a spec plus a ``--reduce`` level into
  a :class:`Reduction`: the permutation group (processor permutations,
  optionally × block permutations × value permutations) with every
  index map precomputed;
* :meth:`Reduction.canonical_key` maps a composed state
  ``(protocol state, observer, checker)`` to the minimum key over its
  orbit — the quotient key the engine interns.

The observer and checker compose with the permutation rather than
fight it: :meth:`~repro.core.observer.Observer.permuted_snapshot`
replays the observer's canonical-renaming walk *as if* the whole run
had been permuted (descriptor IDs are allocation artifacts and carry
no sort content, so only slot visit order and the proc/block/value
payload change), and the checkers take the same permutation into
their ``state_key``.  Because the search frontiers always hold
**concrete** states and only the interned *keys* are canonicalized,
every interned quotient state keeps one concrete witness and parent
actions connect witnesses concretely — counterexample replay needs no
permutation tracking and reports genuine, un-permuted runs.

Violating observer states are exempt from orbit minimization: their
``violation`` field is a rendered message naming concrete operations,
which no permutation can rewrite.  They are recorded, never expanded,
so the exemption costs reduction only on terminal states — soundness
is unaffected.

Sharding composes for free: the parallel engine shards on
``stable_hash(step.key)``, and under reduction ``step.key`` *is* the
quotient key, so all members of an orbit land on the same shard and
are interned exactly once globally.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.operations import BOTTOM, Load, Operation, Store

__all__ = [
    "REDUCE_LEVELS",
    "ArrayContent",
    "FieldSym",
    "QueueContent",
    "SymmetrySpec",
    "Permutation",
    "Reduction",
    "ReductionError",
    "build_reduction",
    "order_key",
]

#: the ``--reduce`` levels, weakest to strongest
REDUCE_LEVELS = ("off", "proc", "proc+block", "full")

#: refuse to enumerate groups beyond this size — at p!·b!·v! growth a
#: mis-parameterised ``--reduce full`` would otherwise hang silently
MAX_GROUP = 40320  # 8!


class ReductionError(ValueError):
    """A reduction was requested that the protocol cannot support."""


# ----------------------------------------------------------------------
# declarations
# ----------------------------------------------------------------------

#: axis sorts a field may be indexed by
_SORTS = ("proc", "block", "value")


@dataclass(frozen=True)
class ArrayContent:
    """Structured :attr:`FieldSym.content`: each entry of the field is
    *itself* a fixed-size row-major array over ``axes`` whose elements
    carry ``sort`` (same meaning as a string content; ``None`` for
    sort-free elements).  Declares nested state shapes such as Lazy
    Caching's ``caches`` — a proc-indexed tuple of block-indexed value
    tuples — without flattening the protocol's state tuple.

    Negative elements are fixed points of every content map: protocols
    use negative sentinels (``INVALID = -1`` cache slots) that name no
    value, and a sort map must never rewrite them.
    """

    axes: Tuple = ()
    sort: Optional[str] = None


@dataclass(frozen=True)
class QueueContent:
    """Structured :attr:`FieldSym.content`: each entry of the field is
    a variable-length FIFO (tuple) of fixed-arity item tuples, and
    ``sorts`` names the sort of each item component (``None`` leaves
    that component alone — flags, counters).  Queue *order* is program
    order and survives any sort permutation, so only the item payloads
    are mapped; declares shapes such as Lazy Caching's out-queues of
    ``(block, value)`` pairs and in-queues of ``(block, value,
    starred)`` triples.  Negative components are fixed points, as for
    :class:`ArrayContent`.
    """

    sorts: Tuple = ()


@dataclass(frozen=True)
class FieldSym:
    """Symmetry declaration for one flat segment of a state component.

    The segment is a row-major array over ``axes`` — each axis either a
    sort name (``'proc'``/``'block'``/``'value'``, sized by the
    protocol's p/b/v) or a plain int (a fixed-size axis the group does
    not act on).  ``axes=()`` declares a scalar slot.  ``content``
    names the sort of the *entries* themselves: ``'value'`` for data
    values (permuted with ⊥ fixed), ``'proc'``/``'block'`` for entries
    holding a processor/block number, ``None`` for sort-free entries
    (control states, counters) that permutations leave alone.  For
    entries that are themselves containers, ``content`` may instead be
    an :class:`ArrayContent` or :class:`QueueContent` declaration.
    """

    axes: Tuple = ()
    content: Optional[object] = None

    def size(self, p: int, b: int, v: int) -> int:
        n = 1
        for a in self.axes:
            n *= {"proc": p, "block": b, "value": v}.get(a, a if isinstance(a, int) else 0)
        return n


@dataclass(frozen=True)
class SymmetrySpec:
    """A component's full symmetry declaration.

    ``state_fields`` mirrors the protocol's state tuple: one entry per
    top-level component, each a tuple of :class:`FieldSym` segments
    concatenated in order (a component that is a single uniform array
    has one segment).  ``location_axes`` lists the storage-location
    groups in numbering order (locations are contiguous from 1), each
    an axes tuple like ``('block',)`` or ``('proc', 'block')`` — the
    derived location permutation is what keeps the observer's location
    map and the protocol's tracking labels consistent under the group.
    """

    state_fields: Tuple[Tuple[FieldSym, ...], ...]
    location_axes: Tuple[Tuple, ...] = ()


# ----------------------------------------------------------------------
# permutations
# ----------------------------------------------------------------------


def _axis_sizes(axes: Sequence, p: int, b: int, v: int) -> Tuple[int, ...]:
    out = []
    for a in axes:
        if a == "proc":
            out.append(p)
        elif a == "block":
            out.append(b)
        elif a == "value":
            out.append(v)
        elif isinstance(a, int) and a >= 1:
            out.append(a)
        else:
            raise ReductionError(f"unknown symmetry axis {a!r}")
    return tuple(out)


def _axis_maps(axes: Sequence, p: int, b: int, v: int,
               pp: Tuple[int, ...], pb: Tuple[int, ...], pv: Tuple[int, ...]):
    """Per-axis index maps (1-based in, 1-based out) under one group
    element; fixed int axes map identically."""
    maps = []
    for a in axes:
        if a == "proc":
            maps.append(pp)
        elif a == "block":
            maps.append(pb)
        elif a == "value":
            maps.append(pv)
        else:
            maps.append(tuple(range(1, a + 1)))
    return maps


def _flat_perm(axes: Sequence, p: int, b: int, v: int,
               pp, pb, pv) -> Tuple[int, ...]:
    """``src[j]``: the 0-based source offset whose entry lands at
    permuted 0-based offset ``j`` in a row-major array over ``axes``."""
    sizes = _axis_sizes(axes, p, b, v)
    maps = _axis_maps(axes, p, b, v, pp, pb, pv)
    n = 1
    for s in sizes:
        n *= s
    src = [0] * n
    for idx in itertools.product(*(range(1, s + 1) for s in sizes)):
        flat = 0
        dst = 0
        for s, i, m in zip(sizes, idx, maps):
            flat = flat * s + (i - 1)
            dst = dst * s + (m[i - 1] - 1)
        src[dst] = flat
    return tuple(src)


@dataclass(frozen=True)
class _ArrayMap:
    """Compiled :class:`ArrayContent` for one group element: ``srcs``
    is the entry's own flat source-offset table and ``entry`` the
    element sort map (``None`` for sort-free elements).  Negative
    elements pass through unmapped (sentinel fixed points)."""

    srcs: Tuple[int, ...]
    entry: Optional[Tuple[int, ...]]

    def apply(self, x: Tuple) -> Tuple:
        e = self.entry
        if e is None:
            return tuple(x[s] for s in self.srcs)
        return tuple(x[s] if x[s] < 0 else e[x[s]] for s in self.srcs)


@dataclass(frozen=True)
class _QueueMap:
    """Compiled :class:`QueueContent` for one group element: one sort
    map (or ``None``) per item component, applied item-wise with queue
    order preserved."""

    maps: Tuple[Optional[Tuple[int, ...]], ...]

    def apply(self, q: Tuple) -> Tuple:
        maps = self.maps
        out = []
        for item in q:
            if len(item) != len(maps):
                raise ReductionError(
                    f"queue item {item!r} has {len(item)} components; "
                    f"its QueueContent declares {len(maps)}"
                )
            out.append(tuple(
                x if m is None or x < 0 else m[x]
                for x, m in zip(item, maps)
            ))
        return tuple(out)


@dataclass(frozen=True)
class Permutation:
    """One group element, with every index map precomputed.

    ``proc``/``block``/``value`` are 1-based maps as tuples
    (``proc[i-1]`` is the image of processor ``i``); ``vmap`` extends
    the value map with the fixed point ``vmap[BOTTOM] == BOTTOM``.
    ``loc`` maps storage locations (``loc[l-1]`` is the image of
    location ``l``); ``loc_inv`` is its inverse — the observer's
    permuted walk visits location ``l'`` by reading the concrete slot
    ``loc_inv[l'-1]``.  ``field_srcs`` holds, per state-tuple
    component, the flat source-offset table plus a per-slot
    content-map reference used by :meth:`Reduction.permute_pstate` —
    an index tuple for string content sorts, a compiled
    :class:`_ArrayMap`/:class:`_QueueMap` for structured content.
    """

    proc: Tuple[int, ...]
    block: Tuple[int, ...]
    value: Tuple[int, ...]
    vmap: Tuple[int, ...]
    loc: Tuple[int, ...]
    loc_inv: Tuple[int, ...]
    #: per state component: (src offsets, per-slot content map or None)
    field_srcs: Tuple[Tuple[Tuple[int, ...], Tuple], ...]
    is_identity: bool = False

    def op(self, op: Optional[Operation]) -> Optional[Operation]:
        """The image of an LD/ST label (identity on anything else)."""
        if isinstance(op, Load):
            return Load(self.proc[op.proc - 1], self.block[op.block - 1],
                        self.vmap[op.value])
        if isinstance(op, Store):
            return Store(self.proc[op.proc - 1], self.block[op.block - 1],
                         self.vmap[op.value])
        return op

    def content_map(self, sort: Optional[str]):
        """The entry map for a ``FieldSym.content`` sort (``None`` for
        sort-free entries)."""
        if sort is None:
            return None
        if sort == "value":
            return self.vmap
        if sort == "proc":
            return (0,) + self.proc  # 1-based lookup, 0 unused
        if sort == "block":
            return (0,) + self.block
        raise ReductionError(f"unknown content sort {sort!r}")


# ----------------------------------------------------------------------
# total order over heterogeneous keys
# ----------------------------------------------------------------------


def order_key(x):
    """A total order over every payload that appears in composed state
    keys (``None``, ints, strings, operations, nested tuples) — plain
    ``min()`` over such keys raises ``TypeError`` the moment a
    ``None`` location slot meets an int, so orbit minimization compares
    through this recursive tagging instead."""
    if x is None:
        return (0,)
    if isinstance(x, bool):
        return (1, int(x))
    if isinstance(x, int):
        return (1, x)
    if isinstance(x, str):
        return (2, x)
    if isinstance(x, Load):
        return (3, 0, x.proc, x.block, x.value)
    if isinstance(x, Store):
        return (3, 1, x.proc, x.block, x.value)
    if isinstance(x, tuple):
        return (5, tuple(order_key(e) for e in x))
    if isinstance(x, frozenset):
        return (5, tuple(sorted(order_key(e) for e in x)))
    return (6, repr(x))


# ----------------------------------------------------------------------
# the reduction object
# ----------------------------------------------------------------------


@dataclass
class ReductionCounters:
    """Run counters the obs layer publishes as ``reduction.*`` gauges."""

    states: int = 0  #: composed states canonicalized
    orbit_hits: int = 0  #: canonicalizations won by a non-identity element
    canon_s: float = 0.0  #: wall seconds spent in orbit minimization

    def as_dict(self) -> dict:
        return {
            "states": self.states,
            "orbit_hits": self.orbit_hits,
            "canon_s": self.canon_s,
        }


class Reduction:
    """The enumerated permutation group plus the orbit-minimum map.

    Picklable plain data (the parallel engine forks it into workers;
    checkpoints carry it inside the pickled search).  ``perms`` always
    starts with the identity, and ties in the orbit minimum are broken
    in its favour, so ``counters.orbit_hits`` counts exactly the
    canonicalizations that landed on a *different* representative.
    """

    def __init__(self, level: str, spec: SymmetrySpec, perms: Sequence[Permutation]):
        self.level = level
        self.spec = spec
        self.perms: Tuple[Permutation, ...] = tuple(perms)
        assert self.perms and self.perms[0].is_identity
        self.counters = ReductionCounters()

    def __reduce__(self):
        # counters are run-local; a forked/unpickled copy starts fresh
        return (Reduction, (self.level, self.spec, self.perms))

    @property
    def group_size(self) -> int:
        return len(self.perms)

    # ------------------------------------------------------------------
    def permute_pstate(self, pstate: Tuple, perm: Permutation) -> Tuple:
        """The image of a protocol state under one group element."""
        out = []
        for comp, (srcs, contents) in zip(pstate, perm.field_srcs):
            if perm.is_identity:
                out.append(comp)
                continue
            part = []
            for j, src in enumerate(srcs):
                x = comp[src]
                cmap = contents[j]
                if cmap is None:
                    part.append(x)
                elif type(cmap) is tuple:
                    # negative sentinels (INVALID slots) are fixed points
                    part.append(x if x < 0 else cmap[x])
                else:
                    part.append(cmap.apply(x))
            out.append(tuple(part))
        return tuple(out)

    # ------------------------------------------------------------------
    def canonical_key(self, pstate: Tuple, obs, chk) -> Tuple:
        """The minimum composed key over the state's orbit.

        Two-stage: protocol states are cheap tuples, so every group
        element first permutes only those and the (much costlier)
        observer walk + checker key run only for the elements whose
        permuted protocol state ties for the minimum.  The singleton
        case of :meth:`canonicalize_batch` — exactly the same
        comparisons, tie-breaks and counters.
        """
        return self.canonicalize_batch(((pstate, obs, chk),))[0]

    def canonicalize_batch(self, items) -> List[Tuple]:
        """Orbit-minimize a whole successor batch at once.

        ``items`` is a sequence of ``(pstate, obs, chk)`` triples; the
        result is one composed key per item, each bit-identical to a
        sequential :meth:`canonical_key` call.  Stage 1 runs
        group-element-outer over the batch, so each element's
        precomputed gather tables (``perm.field_srcs``) stay hot
        across all states in the batch — the array-sweep seam a
        compiled kernel can later slot into.  Stage 2 (observer walk +
        checker key, only for orbit-minimum ties) stays per-item.

        Tie order is preserved: for every item the ties accumulate in
        ``self.perms`` order, identity first, and the strict ``<``
        keeps identity on equal keys — so the winner (and therefore
        ``orbit_hits``) is exactly the sequential winner.
        """
        t0 = time.perf_counter()
        n = len(items)
        best_pks: List[object] = [None] * n
        ties: List[List[Tuple[Permutation, Tuple]]] = [[] for _ in range(n)]
        for perm in self.perms:
            permute = self.permute_pstate
            for idx in range(n):
                ps = permute(items[idx][0], perm)
                pk = order_key(ps)
                bp = best_pks[idx]
                if bp is None or pk < bp:
                    best_pks[idx] = pk
                    ties[idx] = [(perm, ps)]
                elif pk == bp:
                    ties[idx].append((perm, ps))

        keys: List[Tuple] = []
        hits = 0
        for idx in range(n):
            obs, chk = items[idx][1], items[idx][2]
            tied = ties[idx]
            if len(tied) == 1:
                perm, ps = tied[0]
                canon, okey = obs.permuted_snapshot(perm)
                key = (ps, okey, chk.state_key(canon, None if perm.is_identity else perm))
                winner = perm
            else:
                key = None
                best_fk = None
                winner = tied[0][0]
                for perm, ps in tied:
                    canon, okey = obs.permuted_snapshot(perm)
                    cand = (ps, okey,
                            chk.state_key(canon, None if perm.is_identity else perm))
                    fk = order_key(cand)
                    # identity is first in self.perms, hence first among
                    # ties — strict < keeps it on equal keys
                    if best_fk is None or fk < best_fk:
                        best_fk = fk
                        key = cand
                        winner = perm
            if not winner.is_identity:
                hits += 1
            keys.append(key)
        c = self.counters
        c.states += n
        c.orbit_hits += hits
        c.canon_s += time.perf_counter() - t0
        return keys

    def describe(self) -> str:
        return f"reduce={self.level} |G|={len(self.perms)}"


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------


def _check_content(content, p: int, b: int, v: int) -> None:
    """Reject malformed ``FieldSym.content`` declarations at build time
    (an unknown sort discovered mid-canonicalization would abort the
    search after arbitrary work)."""
    if content is None or content in _SORTS:
        return
    if isinstance(content, ArrayContent):
        _axis_sizes(content.axes, p, b, v)
        if content.sort is not None and content.sort not in _SORTS:
            raise ReductionError(f"unknown content sort {content.sort!r}")
        return
    if isinstance(content, QueueContent):
        for s in content.sorts:
            if s is not None and s not in _SORTS:
                raise ReductionError(f"unknown content sort {s!r}")
        return
    raise ReductionError(f"unknown field content {content!r}")


def _check_spec(spec: SymmetrySpec, protocol) -> None:
    p, b, v = protocol.p, protocol.b, protocol.v
    init = protocol.initial_state()
    if len(spec.state_fields) != len(init):
        raise ReductionError(
            f"symmetry spec declares {len(spec.state_fields)} state "
            f"components but {protocol.describe()} has {len(init)}"
        )
    # every group must cover its state component exactly: an
    # undercounting spec would make permute_pstate silently truncate
    # non-identity images and collide distinct states on one quotient key
    for i, (group, comp) in enumerate(zip(spec.state_fields, init)):
        total = 0
        for f in group:
            f_size = f.size(p, b, v)
            if f_size < 1:
                raise ReductionError(f"empty symmetry field {f!r}")
            _check_content(f.content, p, b, v)
            total += f_size
        try:
            comp_size = len(comp)
        except TypeError:
            raise ReductionError(
                f"state component {i} of {protocol.describe()} is not a "
                f"sized sequence; symmetry reduction cannot permute it"
            ) from None
        if total != comp_size:
            raise ReductionError(
                f"symmetry spec covers {total} slots of state component "
                f"{i} but {protocol.describe()} has {comp_size}"
            )
    locs = 0
    for axes in spec.location_axes:
        n = 1
        for s in _axis_sizes(axes, p, b, v):
            n *= s
        locs += n
    if spec.location_axes and locs != protocol.num_locations:
        raise ReductionError(
            f"symmetry spec covers {locs} locations but "
            f"{protocol.describe()} has {protocol.num_locations}"
        )


def build_reduction(protocol, level: str) -> Optional[Reduction]:
    """Build the :class:`Reduction` for one protocol and ``--reduce``
    level (``None`` for ``"off"``).

    Raises :class:`ReductionError` when the level is unknown, the
    protocol declares no :meth:`~repro.core.protocol.Protocol.symmetry_spec`,
    or the group would be unreasonably large.
    """
    if level not in REDUCE_LEVELS:
        raise ReductionError(
            f"unknown --reduce level {level!r} (known: {', '.join(REDUCE_LEVELS)})"
        )
    if level == "off":
        return None
    spec = protocol.symmetry_spec()
    if spec is None:
        raise ReductionError(
            f"{protocol.describe()} declares no symmetry spec; "
            f"--reduce {level} is only available for protocols that do "
            f"(use --reduce off)"
        )
    _check_spec(spec, protocol)
    p, b, v = protocol.p, protocol.b, protocol.v

    proc_perms = list(itertools.permutations(range(1, p + 1)))
    block_perms = (
        list(itertools.permutations(range(1, b + 1)))
        if level in ("proc+block", "full")
        else [tuple(range(1, b + 1))]
    )
    value_perms = (
        list(itertools.permutations(range(1, v + 1)))
        if level == "full"
        else [tuple(range(1, v + 1))]
    )
    size = len(proc_perms) * len(block_perms) * len(value_perms)
    if size > MAX_GROUP:
        raise ReductionError(
            f"--reduce {level} on {protocol.describe()} enumerates a "
            f"group of {size} permutations (cap {MAX_GROUP}); use a "
            f"weaker level"
        )

    # location numbering: contiguous groups from 1 in declaration order
    loc_bases = []
    base = 1
    for axes in spec.location_axes:
        loc_bases.append(base)
        n = 1
        for s in _axis_sizes(axes, p, b, v):
            n *= s
        base += n
    L = base - 1

    perms: List[Permutation] = []
    ident = (tuple(range(1, p + 1)), tuple(range(1, b + 1)), tuple(range(1, v + 1)))
    for pp in proc_perms:
        for pb in block_perms:
            for pv in value_perms:
                vmap = (BOTTOM,) + pv
                loc = [0] * L
                for axes, gbase in zip(spec.location_axes, loc_bases):
                    for src_off, dst_off in enumerate(
                        _inverse(_flat_perm(axes, p, b, v, pp, pb, pv))
                    ):
                        loc[gbase - 1 + src_off] = gbase + dst_off
                loc_t = tuple(loc) if L else ()
                loc_inv = _inverse_1based(loc_t)
                field_srcs = []
                for group in spec.state_fields:
                    srcs: List[int] = []
                    contents: List[Optional[str]] = []
                    off = 0
                    for f in group:
                        seg = _flat_perm(f.axes, p, b, v, pp, pb, pv)
                        srcs.extend(off + s for s in seg)
                        contents.extend([f.content] * len(seg))
                        off += len(seg)
                    field_srcs.append((tuple(srcs), tuple(contents)))
                is_id = (pp, pb, pv) == ident
                content_cache: Dict[object, object] = {}

                def _cmap(c, pp=pp, pb=pb, pv=pv, vmap=vmap, cache=content_cache):
                    if c is None:
                        return None
                    if c not in cache:
                        cache[c] = _compile_content(c, p, b, v, pp, pb, pv, vmap)
                    return cache[c]

                perm = Permutation(
                    proc=pp, block=pb, value=pv, vmap=vmap,
                    loc=loc_t, loc_inv=loc_inv,
                    field_srcs=tuple(
                        (srcs, tuple(_cmap(c) for c in contents))
                        for srcs, contents in field_srcs
                    ),
                    is_identity=is_id,
                )
                if is_id:
                    perms.insert(0, perm)
                else:
                    perms.append(perm)
    return Reduction(level, spec, perms)


def _content(sort: str, pp, pb, vmap):
    if sort == "value":
        return vmap
    if sort == "proc":
        return (0,) + pp
    if sort == "block":
        return (0,) + pb
    raise ReductionError(f"unknown content sort {sort!r}")


def _compile_content(c, p, b, v, pp, pb, pv, vmap):
    """One group element's entry map for a ``FieldSym.content``
    declaration: an index tuple for plain sorts, a compiled
    :class:`_ArrayMap`/:class:`_QueueMap` for structured content."""
    if isinstance(c, str):
        return _content(c, pp, pb, vmap)
    if isinstance(c, ArrayContent):
        return _ArrayMap(
            srcs=_flat_perm(c.axes, p, b, v, pp, pb, pv),
            entry=None if c.sort is None else _content(c.sort, pp, pb, vmap),
        )
    if isinstance(c, QueueContent):
        return _QueueMap(maps=tuple(
            None if s is None else _content(s, pp, pb, vmap)
            for s in c.sorts
        ))
    raise ReductionError(f"unknown field content {c!r}")


def _inverse(src_for_dst: Tuple[int, ...]) -> Tuple[int, ...]:
    """Invert a 0-based src-for-dst table into dst-for-src."""
    out = [0] * len(src_for_dst)
    for dst, src in enumerate(src_for_dst):
        out[src] = dst
    return tuple(out)


def _inverse_1based(loc: Tuple[int, ...]) -> Tuple[int, ...]:
    out = [0] * len(loc)
    for src0, dst1 in enumerate(loc):
        out[dst1 - 1] = src0 + 1
    return tuple(out)
