"""The Lazy Caching protocol of Afek, Brown & Merritt (TOPLAS 1993).

The paper's flagship hard case: Lazy Caching is sequentially
consistent but **not** real-time ST ordered — stores sit in
per-processor out-queues and serialise only when a ``memory-write``
pops them into memory, so the serial order of STs to a block is the
memory-write order, not the trace order.  Verifying it requires the
non-trivial finite-state ST-order generator of Section 4.2
(:class:`~repro.core.storder.WriteOrderSTOrder` here).

Structure (faithful to the original, with bounded queues):

* full memory, one location per block;
* each processor has a cache (one entry per block, possibly invalid),
  a FIFO **out-queue** of its own pending ``(block, value)`` stores,
  and a FIFO **in-queue** of memory updates not yet applied to its
  cache; in-queue entries for the processor's *own* stores are
  *starred*.
* ``ST(P,B,V)`` appends to P's out-queue (and nothing else).
* ``memory-write(P)`` pops P's out-queue head into memory and appends
  the update to *every* in-queue (starred in P's own).
* ``cache-update(P)`` pops P's in-queue head into P's cache.
* ``LD(P,B,V)`` reads P's cache entry for B — enabled only when P's
  out-queue is empty and P's in-queue holds no starred entry (the
  conditions that make the protocol SC: a processor must observe its
  own stores before reading anything).
* ``cache-invalidate(P,B)`` models capacity eviction (optional).

State: ``(mem, caches, outqs, inqs)``; queue capacities are
constructor parameters (1 slot each by default — enough to exhibit
the non-real-time serialisation while keeping model checking cheap).

Storage locations: memory per block, cache per (proc, block), one per
out-queue slot and one per in-queue slot, so data provably flows
ST → out-queue → {memory, in-queues} → cache → LD under the copy
tracking labels.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..core.operations import BOTTOM, InternalAction
from ..core.protocol import FRESH, Tracking, Transition
from ..core.storder import ActionKeyedSerializer, WriteOrderSTOrder
from .base import LocationMap, MemoryProtocol, replace_at

__all__ = ["LazyCachingProtocol", "LazyCachingPorSpec", "lazy_caching_st_order"]

# cache entries: value or INVALID (distinct from holding ⊥, which is a
# *valid* copy of the initial memory contents)
INVALID = -1


def lazy_caching_st_order() -> WriteOrderSTOrder:
    """The Section 4.2 ST-order generator for Lazy Caching: a ST
    serialises when its processor's ``memory-write`` fires."""
    return WriteOrderSTOrder(ActionKeyedSerializer("memory-write"))


class LazyCachingPorSpec:
    """:class:`~repro.engine.por.PorSpec` for Lazy Caching.

    Resources are the protocol's storage structures at processor
    granularity — ``("outq", P)``, ``("inq", P)``, ``("cache", P)``
    and ``("mem",)``:

    * ``LD(P, B)`` reads outq/inq/cache of ``P`` (its enabledness and
      its value), writes nothing;
    * ``ST(P, B)`` reads and writes ``outq P``;
    * ``memory-write(P)`` reads ``outq P`` plus *every* in-queue (it
      needs room in all of them), writes memory, ``outq P`` and every
      in-queue — and is witness-visible, because the ST-order
      generator serialises on it;
    * ``cache-update(P)`` reads ``inq P``, writes ``inq P`` and
      ``cache P`` — invisible, and independent of everything owned by
      other processors: the protocol's main commuting pair;
    * ``cache-invalidate(P, B)`` reads and writes ``cache P`` —
      invisible.

    :meth:`necessary_enablers` supplies the sharpened D2 sets that
    make the reduction real: a *full* in-queue alone blocks every
    ``memory-write``, and its only writers are the invisible
    ``cache-update`` of that processor (and the memory-writes
    themselves, already disabled) — without this hint the default
    all-reads set drags every processor's enabled STs into the
    closure and the ample set never forms.
    """

    def __init__(self, p: int, b: int, out_depth: int, in_depth: int):
        self.p = p
        self.b = b
        self.out_depth = out_depth
        self.in_depth = in_depth

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and (
            (other.p, other.b, other.out_depth, other.in_depth)
            == (self.p, self.b, self.out_depth, self.in_depth)
        )

    def __hash__(self) -> int:
        return hash(
            (type(self).__name__, self.p, self.b, self.out_depth, self.in_depth)
        )

    def schemas(self):
        for P in range(1, self.p + 1):
            yield ("memory-write", P)
            yield ("cache-update", P)
            for B in range(1, self.b + 1):
                yield ("LD", P, B)
                yield ("ST", P, B)
                yield ("cache-invalidate", P, B)

    def schema_of(self, action):
        from ..core.operations import Load, Store

        if isinstance(action, Load):
            return ("LD", action.proc, action.block)
        if isinstance(action, Store):
            return ("ST", action.proc, action.block)
        if action.name in ("memory-write", "cache-update") and len(action.args) == 1:
            return (action.name, action.args[0])
        if action.name == "cache-invalidate" and len(action.args) == 2:
            return ("cache-invalidate",) + tuple(action.args)
        return None

    def footprint(self, schema):
        from ..engine.por import footprint

        kind, P = schema[0], schema[1]
        if kind == "LD":
            return footprint(reads=[("outq", P), ("inq", P), ("cache", P)])
        if kind == "ST":
            return footprint(reads=[("outq", P)], writes=[("outq", P)])
        if kind == "memory-write":
            inqs = [("inq", Q) for Q in range(1, self.p + 1)]
            return footprint(
                reads=[("outq", P)] + inqs,
                writes=[("mem",), ("outq", P)] + inqs,
            )
        if kind == "cache-update":
            return footprint(
                reads=[("inq", P)], writes=[("inq", P), ("cache", P)]
            )
        # cache-invalidate
        return footprint(reads=[("cache", P)], writes=[("cache", P)])

    def necessary_enablers(self, schema, pstate):
        _mem, caches, outqs, inqs = pstate
        kind, P = schema[0], schema[1]
        if kind == "memory-write":
            # each alternative must *alone* provably block in pstate;
            # full in-queues first — their writers are invisible pops
            alts = [
                (("inq", Q),)
                for Q in range(1, self.p + 1)
                if len(inqs[Q - 1]) >= self.in_depth
            ]
            if not outqs[P - 1]:
                alts.append((("outq", P),))
            return tuple(alts) if alts else None
        if kind == "LD":
            alts = []
            if any(st for (_b, _v, st) in inqs[P - 1]):
                alts.append((("inq", P),))
            if caches[P - 1][schema[2] - 1] == INVALID:
                alts.append((("cache", P),))
            if outqs[P - 1]:
                alts.append((("outq", P),))
            return tuple(alts) if alts else None
        if kind == "ST":
            return ((("outq", P),),)  # blocked only by a full out-queue
        if kind == "cache-update":
            return ((("inq", P),),)  # blocked only by an empty in-queue
        if kind == "cache-invalidate":
            return ((("cache", P),),)  # blocked only by an invalid entry
        return None

    def memo_key(self, pstate):
        # everything necessary_enablers reads, abstracted: queue
        # emptiness/fullness, starred flags, cache validity
        _mem, caches, outqs, inqs = pstate
        return (
            tuple(len(q) >= self.out_depth for q in outqs),
            tuple(
                (len(q) >= self.in_depth, any(st for (_b, _v, st) in q))
                for q in inqs
            ),
            tuple(tuple(cv != INVALID for cv in c) for c in caches),
        )


class LazyCachingProtocol(MemoryProtocol):
    """Afek/Brown/Merritt lazy caching with bounded queues."""

    def __init__(
        self,
        p: int = 2,
        b: int = 1,
        v: int = 1,
        *,
        out_depth: int = 1,
        in_depth: int = 1,
        allow_invalidate: bool = False,
        valid_initial_caches: bool = True,
    ):
        super().__init__(p, b, v)
        if out_depth < 1 or in_depth < 1:
            raise ValueError("queue depths must be at least 1")
        self.out_depth = out_depth
        self.in_depth = in_depth
        self.allow_invalidate = allow_invalidate
        self.valid_initial_caches = valid_initial_caches
        self._locs = LocationMap()
        self._locs.add_group("mem", b)
        self._locs.add_group("cache", p * b)
        self._locs.add_group("outq", p * out_depth)
        self._locs.add_group("inq", p * in_depth)
        self.num_locations = self._locs.total

    # location helpers --------------------------------------------------
    def mem_loc(self, block: int) -> int:
        return self._locs.loc("mem", block - 1)

    def cache_loc(self, proc: int, block: int) -> int:
        return self._locs.loc("cache", (proc - 1) * self.b + (block - 1))

    def outq_loc(self, proc: int, slot: int) -> int:
        return self._locs.loc("outq", (proc - 1) * self.out_depth + slot)

    def inq_loc(self, proc: int, slot: int) -> int:
        return self._locs.loc("inq", (proc - 1) * self.in_depth + slot)

    # ------------------------------------------------------------------
    def symmetry_spec(self):
        """Lazy Caching is index-uniform over all three sorts: every
        rule quantifies over processors, blocks, and values without
        naming an index, queues are FIFO regardless of payload, and the
        starred flag depends only on *which* processor issued the store
        — itself permuted.  The nested state shape needs the structured
        content declarations: caches are per-proc arrays of per-block
        values (``INVALID`` fixed by the negative-sentinel rule),
        out-queues hold ``(block, value)`` pairs, in-queues
        ``(block, value, starred)`` triples with the flag sort-free.
        """
        from ..engine.reduction import (
            ArrayContent,
            FieldSym,
            QueueContent,
            SymmetrySpec,
        )

        return SymmetrySpec(
            state_fields=(
                (FieldSym(axes=("block",), content="value"),),
                (FieldSym(
                    axes=("proc",),
                    content=ArrayContent(axes=("block",), sort="value"),
                ),),
                (FieldSym(
                    axes=("proc",),
                    content=QueueContent(sorts=("block", "value")),
                ),),
                (FieldSym(
                    axes=("proc",),
                    content=QueueContent(sorts=("block", "value", None)),
                ),),
            ),
            location_axes=(
                ("block",),
                ("proc", "block"),
                ("proc", self.out_depth),
                ("proc", self.in_depth),
            ),
        )

    def por_spec(self):
        # processor-granular footprints over the queue/cache structures
        # (see LazyCachingPorSpec); sound for allow_invalidate=False too
        # — the invalidate schemas are then simply never enabled
        return LazyCachingPorSpec(self.p, self.b, self.out_depth, self.in_depth)

    # ------------------------------------------------------------------
    def initial_state(self) -> Tuple:
        mem = (BOTTOM,) * self.b
        cache_val = BOTTOM if self.valid_initial_caches else INVALID
        caches = ((cache_val,) * self.b,) * self.p
        outqs = ((),) * self.p  # per proc: tuple of (block, value)
        inqs = ((),) * self.p  # per proc: tuple of (block, value, starred)
        return (mem, caches, outqs, inqs)

    def is_quiescent(self, state: Tuple) -> bool:
        _mem, _caches, outqs, inqs = state
        return all(not q for q in outqs) and all(not q for q in inqs)

    def may_load_bottom(self, state: Tuple, block: int) -> bool:
        _mem, caches, _outqs, _inqs = state
        # a ⊥-load of B needs a valid ⊥ cache copy; updates only write
        # store values (never ⊥), so ⊥ copies monotonically disappear
        return any(caches[P - 1][block - 1] == BOTTOM for P in self.procs)

    # ------------------------------------------------------------------
    def transitions(self, state: Tuple) -> Iterable[Transition]:
        mem, caches, outqs, inqs = state
        for P in self.procs:
            outq, inq = outqs[P - 1], inqs[P - 1]
            # LD: out-queue empty, no starred in-queue entries
            if not outq and not any(st for (_b, _v, st) in inq):
                for B in self.blocks:
                    cv = caches[P - 1][B - 1]
                    if cv != INVALID:
                        yield self.load(P, B, cv, state, self.cache_loc(P, B))
            # ST: space in the out-queue
            if len(outq) < self.out_depth:
                slot = len(outq)
                for B in self.blocks:
                    for V in self.values:
                        ns = (
                            mem,
                            caches,
                            replace_at(outqs, P - 1, outq + ((B, V),)),
                            inqs,
                        )
                        yield self.store(P, B, V, ns, self.outq_loc(P, slot))
            # memory-write: out-queue non-empty, room in every in-queue
            if outq and all(len(q) < self.in_depth for q in inqs):
                yield self._memory_write(state, P)
            # cache-update: in-queue non-empty
            if inq:
                yield self._cache_update(state, P)
            # cache-invalidate (optional capacity eviction)
            if self.allow_invalidate:
                for B in self.blocks:
                    if caches[P - 1][B - 1] != INVALID:
                        yield self._invalidate(state, P, B)

    # ------------------------------------------------------------------
    def _memory_write(self, state: Tuple, P: int) -> Transition:
        mem, caches, outqs, inqs = state
        outq = outqs[P - 1]
        (B, V) = outq[0]
        src = self.outq_loc(P, 0)
        copies: Dict[int, int] = {self.mem_loc(B): src}
        new_inqs = []
        for Q in self.procs:
            q = inqs[Q - 1]
            copies[self.inq_loc(Q, len(q))] = src
            new_inqs.append(q + ((B, V, Q == P),))
        # the popped out-queue shifts down; remaining entries move one
        # slot earlier (their locations shift too)
        rest = outq[1:]
        for i in range(len(rest)):
            copies[self.outq_loc(P, i)] = self.outq_loc(P, i + 1)
        if not any(
            dst == self.outq_loc(P, len(rest)) for dst in copies
        ):
            copies[self.outq_loc(P, len(rest))] = FRESH
        ns = (
            replace_at(mem, B - 1, V),
            caches,
            replace_at(outqs, P - 1, rest),
            tuple(new_inqs),
        )
        return Transition(InternalAction("memory-write", (P,)), ns, Tracking(copies=copies))

    def _cache_update(self, state: Tuple, P: int) -> Transition:
        mem, caches, outqs, inqs = state
        inq = inqs[P - 1]
        (B, V, _starred) = inq[0]
        copies: Dict[int, int] = {self.cache_loc(P, B): self.inq_loc(P, 0)}
        rest = inq[1:]
        for i in range(len(rest)):
            copies[self.inq_loc(P, i)] = self.inq_loc(P, i + 1)
        tail = self.inq_loc(P, len(rest))
        if tail not in copies:
            copies[tail] = FRESH
        new_caches = replace_at(
            caches, P - 1, replace_at(caches[P - 1], B - 1, V)
        )
        ns = (mem, new_caches, outqs, replace_at(inqs, P - 1, rest))
        return Transition(InternalAction("cache-update", (P,)), ns, Tracking(copies=copies))

    def _invalidate(self, state: Tuple, P: int, B: int) -> Transition:
        mem, caches, outqs, inqs = state
        new_caches = replace_at(
            caches, P - 1, replace_at(caches[P - 1], B - 1, INVALID)
        )
        ns = (mem, new_caches, outqs, inqs)
        return Transition(
            InternalAction("cache-invalidate", (P, B)),
            ns,
            Tracking(copies={self.cache_loc(P, B): FRESH}),
        )
