"""Run litmus programs on concrete protocols.

:func:`outcomes_on_protocol` drives a :class:`~repro.core.protocol.Protocol`
with a litmus program: each processor must issue its instructions in
program order (stores with the program's values, loads accepting
whatever value the protocol offers), while internal protocol actions
interleave freely.  The result is the set of outcomes the *protocol*
can produce — compare it against :func:`repro.litmus.semantics.outcomes_sc`
to test protocol-level sequential consistency on that program, and
against TSO to characterise the store-buffer design.

:func:`runs_for_outcome` additionally returns a witness run per
outcome, which feeds the per-trace checking scenario of Section 5.

A thin adapter since the unified-engine refactor: the constrained
product (protocol × program counters × registers) is a
:class:`~repro.engine.System` explored depth-first by the shared
:class:`~repro.engine.SearchEngine`; witness runs are reconstructed
from the engine's parent-pointer store instead of carrying an action
list per frontier entry.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from ..core.operations import Action, Load, Store
from ..core.protocol import Protocol
from ..engine import SearchEngine, Step, System
from .programs import LitmusProgram, Outcome, St

__all__ = ["outcomes_on_protocol", "runs_for_outcome"]


class _LitmusSystem(System):
    """Protocol constrained by a litmus program.

    States are ``(protocol state, per-processor program counters,
    collected register reads)``; loads and stores must follow each
    processor's instruction sequence while internal actions interleave
    freely.  States are their own keys (all components are hashable
    values already).
    """

    def __init__(self, protocol: Protocol, program: LitmusProgram):
        self.protocol = protocol
        self.program = program
        self.n = program.num_procs

    def initial(self):
        return (self.protocol.initial_state(), (0,) * self.n, ())

    def key(self, state):
        return state

    def steps(self, state) -> Iterator[Step]:
        pstate, pos, regs = state
        n = self.n
        procs = self.program.procs
        for t in self.protocol.transitions(pstate):
            a = t.action
            if isinstance(a, (Load, Store)):
                if a.proc > n or pos[a.proc - 1] >= len(procs[a.proc - 1]):
                    continue
                ins = procs[a.proc - 1][pos[a.proc - 1]]
                if isinstance(ins, St):
                    if not (
                        isinstance(a, Store)
                        and a.block == ins.block
                        and a.value == ins.value
                    ):
                        continue
                    nregs = regs
                else:
                    if not (isinstance(a, Load) and a.block == ins.block):
                        continue
                    nregs = regs + ((ins.reg, a.value),)
                npos = pos[: a.proc - 1] + (pos[a.proc - 1] + 1,) + pos[a.proc :]
                child = (t.state, npos, nregs)
            else:
                child = (t.state, pos, regs)
            yield Step(a, child, child, True)

    def describe(self) -> str:
        return f"{self.protocol.describe()} ⋉ {self.program.name}"


def _search(
    protocol: Protocol,
    program: LitmusProgram,
    *,
    require_quiescent_end: bool = True,
    collect_runs: bool = False,
) -> Dict[Outcome, Tuple[Action, ...]]:
    if program.num_procs > protocol.p:
        raise ValueError(
            f"program needs {program.num_procs} processors, protocol has {protocol.p}"
        )
    if program.max_value > protocol.v:
        raise ValueError("program stores values beyond the protocol's v")
    if max(program.blocks, default=1) > protocol.b:
        raise ValueError("program touches blocks beyond the protocol's b")

    system = _LitmusSystem(protocol, program)
    n = system.n
    procs = program.procs
    #: outcome -> the (self-keyed) state that first exhibited it
    witness_state: Dict[Outcome, Tuple] = {}

    def on_state(state, _depth) -> None:
        pstate, pos, regs = state
        if all(pos[i] == len(procs[i]) for i in range(n)) and (
            not require_quiescent_end or protocol.is_quiescent(pstate)
        ):
            outcome = tuple(sorted(regs))
            if outcome not in witness_state:
                witness_state[outcome] = state

    engine = SearchEngine(
        system,
        strategy="dfs",
        track_successors=False,
        check_quiescence_reachability=False,
        on_state=on_state,
    )
    engine.run()
    if not collect_runs:
        return {outcome: () for outcome in witness_state}
    store = engine.store
    results: Dict[Outcome, Tuple[Action, ...]] = {}
    for outcome, state in witness_state.items():
        sid = store.id_of(state)
        assert sid is not None  # on_state only sees admitted states
        results[outcome] = tuple(store.path_to(sid))
    return results


def outcomes_on_protocol(
    protocol: Protocol,
    program: LitmusProgram,
    *,
    require_quiescent_end: bool = True,
) -> Set[Outcome]:
    """All outcomes the protocol can produce for ``program``."""
    return set(
        _search(protocol, program, require_quiescent_end=require_quiescent_end)
    )


def runs_for_outcome(
    protocol: Protocol,
    program: LitmusProgram,
) -> Dict[Outcome, Tuple[Action, ...]]:
    """One witness run (full action sequence) per reachable outcome."""
    return _search(protocol, program, collect_runs=True)
