"""Soundness fuzzing for partial-order reduction.

POR is the one reduction whose bugs are *silent*: an unsound ample set
does not crash, it quietly skips the interleaving that contained the
violation.  So this suite is built to make exactly that failure loud,
and doubles as the kill-oracle for the mutation tests
(``tests/test_por_mutation.py``), which re-run
:func:`run_soundness_suite` under a weakened independence relation and
a broken C3 proviso and require it to fail.

The teeth, in order of sharpness:

* **the spin gadget** — a protocol with an invisible two-state spin
  cycle next to a guaranteed SC violation.  A correct C3 proviso must
  fully expand some state on the cycle and find the violation; a
  broken one defers the visible actions forever and "verifies" a
  broken protocol.  This is the regression the depth proviso is
  measured against.
* **the b=1 degeneracy theorem** — on single-block snoopy protocols
  every reachable state with a readable line has an enabled visible
  LD, and all internal actions share the block's resource token, so
  *no* valid ample set exists and ``--por on`` must explore the state
  space bit-identically.  Any deviation means the independence
  relation got weaker than declared.
* **the buggy zoo** — every known-broken protocol must still be
  refuted under ``--por on``, with a counterexample that replays
  through a fresh observer + checker.
* **seeded sweeps** — DSL protocols (no ``por_spec``: the degradation
  path must be the *exact* unreduced search) and reduction-bearing
  protocols across {bfs, dfs} × workers {1, 2} × reduce {off, full},
  holding the :data:`repro.difftest.CROSS_POR_FIELDS` contract.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Tuple

import pytest

from repro.core.operations import BOTTOM, InternalAction, Load, Store
from repro.core.protocol import Tracking, Transition
from repro.difftest import CROSS_POR_FIELDS, compare_fingerprints, fingerprint
from repro.engine.por import Footprint, PorSpec, footprint
from repro.harness import Budget, CheckpointError, run_verification
from repro.memory import BUGGY_VARIANTS, MSIProtocol, MESIProtocol
from repro.memory.base import MemoryProtocol
from repro.memory.lazy_caching import LazyCachingProtocol, lazy_caching_st_order
from repro.pdl.examples import buggy_msi_spec, msi_spec, serial_spec


# ----------------------------------------------------------------------
# the spin gadget: an invisible cycle guarding a guaranteed violation
# ----------------------------------------------------------------------


class SpinGadgetPorSpec(PorSpec):
    """``spin`` touches only its own token; the program actions share
    the memory/pc tokens.  So {spin} is always a valid ample candidate
    wherever a program action is also enabled — the C3 proviso is the
    *only* thing standing between the selector and unsoundness."""

    def __eq__(self, other) -> bool:
        return type(other) is type(self)

    def __hash__(self) -> int:
        return hash(type(self).__name__)

    def schemas(self) -> Iterable[Tuple]:
        return (("spin",), ("ST",), ("LD",))

    def schema_of(self, action) -> Optional[Tuple]:
        if isinstance(action, InternalAction):
            return ("spin",) if action.name == "spin" else None
        if isinstance(action, Store):
            return ("ST",)
        if isinstance(action, Load):
            return ("LD",)
        return None

    def footprint(self, schema: Tuple) -> Footprint:
        if schema == ("spin",):
            return footprint(reads=[("s",)], writes=[("s",)])
        if schema == ("ST",):
            return footprint(reads=[("m",), ("pc",)], writes=[("m",), ("pc",)])
        return footprint(reads=[("m",), ("pc",)], writes=[("pc",)])


class SpinGadget(MemoryProtocol):
    """One processor runs ST(1,1,1) then a stale ⊥-load — a guaranteed
    SC violation two program steps from the root — while an invisible
    ``spin`` action toggles an unrelated bit, forming a two-state
    cycle reachable purely through ample sets.

    State: ``(mem, bit, pc)``; pc 0 = before the store, 1 = store done
    (stale load pending), 2 = done.
    """

    def __init__(self):
        super().__init__(1, 1, 1)
        self.num_locations = 1

    def initial_state(self) -> Tuple[int, int, int]:
        return (BOTTOM, 0, 0)

    def may_load_bottom(self, state, block: int) -> bool:
        return True  # the stale ⊥-load is exactly the modelled bug

    def transitions(self, state) -> Iterable[Transition]:
        mem, bit, pc = state
        yield Transition(
            InternalAction("spin"), (mem, 1 - bit, pc), Tracking()
        )
        if pc == 0:
            yield self.store(1, 1, 1, (1, bit, 1), 0)
        elif pc == 1:
            # reads ⊥ after this processor's own store: violates po
            yield self.load(1, 1, BOTTOM, (mem, bit, 2), 0)

    def por_spec(self):
        return SpinGadgetPorSpec()


# ----------------------------------------------------------------------
# the kill-oracle shared with tests/test_por_mutation.py
# ----------------------------------------------------------------------


def run_soundness_suite():
    """The minimal POR soundness battery: raises ``AssertionError``
    under any reduction that skips a needed interleaving.

    Kept fast (a few seconds) because the mutation suite runs it once
    per mutant; the broader sweeps below extend it, the mutants only
    need to die here.
    """
    # 1. the spin gadget: the violation must survive the reduction
    off = fingerprint(SpinGadget(), mode="fast", por="off")
    on = fingerprint(SpinGadget(), mode="fast", por="on")
    assert off.verdict == "violation"
    assert on.verdict == "violation", (
        "POR hid the spin gadget's violation (C3/proviso unsound)"
    )
    assert on.cx_replays is True

    # 2. the b=1 degeneracy theorem: bit-identical exploration
    for proto in (MSIProtocol(p=2, b=1, v=2), MESIProtocol(p=2, b=1, v=1)):
        full = fingerprint(proto, mode="fast", por="off")
        red = fingerprint(proto, mode="fast", por="on")
        assert (red.states, red.transitions, red.verdict) == (
            full.states,
            full.transitions,
            full.verdict,
        ), f"b=1 snoopy must admit no ample set ({proto.describe()})"

    # 3. a buggy protocol is still refuted, with a replaying cx
    cls, cfg = BUGGY_VARIANTS[0]
    fp = fingerprint(cls(*cfg), mode="fast", por="on", exhaustive=False)
    assert fp.verdict == "violation"
    assert fp.cx_replays is True


def test_soundness_suite_passes_unmutated():
    run_soundness_suite()


# ----------------------------------------------------------------------
# the spin gadget, spelled out
# ----------------------------------------------------------------------


def test_spin_gadget_violation_survives_por_and_replays():
    off = fingerprint(SpinGadget(), mode="fast", por="off")
    on = fingerprint(SpinGadget(), mode="fast", por="on")
    assert off.verdict == on.verdict == "violation"
    assert on.cx_replays is True
    # the reduction really happened: the gadget's spin states are
    # ample-expanded wherever the proviso allows
    assert on.states <= off.states


def test_spin_gadget_reduces_somewhere():
    # sanity that the gadget exercises the ample path at all (otherwise
    # the mutation kill would be vacuous): the selector must propose
    # {spin} at the root, and only the proviso decides
    from repro.engine.por import build_por

    sel = build_por(SpinGadget(), "on")
    proto = SpinGadget()
    steps = list(proto.transitions(proto.initial_state()))

    class _Step:
        def __init__(self, t):
            self.action = t.action

    ample = sel.select(proto.initial_state(), [_Step(t) for t in steps])
    assert ample is not None and len(ample) == 1
    assert ample[0].action == InternalAction("spin")


# ----------------------------------------------------------------------
# b=1 degeneracy across the snoopy zoo
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "proto",
    [MSIProtocol(p=2, b=1, v=2), MESIProtocol(p=2, b=1, v=1)],
    ids=["msi-p2b1v2", "mesi-p2b1v1"],
)
def test_b1_snoopy_por_is_bit_identical(proto):
    full = fingerprint(proto, mode="fast", por="off")
    red = fingerprint(proto, mode="fast", por="on")
    assert (red.states, red.transitions, red.quiescent, red.verdict) == (
        full.states,
        full.transitions,
        full.quiescent,
        full.verdict,
    )
    assert red.canonical_violation == full.canonical_violation


# ----------------------------------------------------------------------
# the buggy zoo keeps being caught
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "variant", [cls.__name__ for cls, _cfg in BUGGY_VARIANTS]
)
@pytest.mark.parametrize("workers", [1, 2])
def test_buggy_zoo_still_refuted_under_por(variant, workers):
    cls, cfg = next(
        (c, cfg) for c, cfg in BUGGY_VARIANTS if c.__name__ == variant
    )
    fp = fingerprint(
        cls(*cfg), mode="fast", por="on", workers=workers, exhaustive=False
    )
    assert fp.verdict == "violation"
    assert fp.cx_replays is True


def test_por_counterexample_replays_on_a_reduced_search():
    # lazy caching under the (deliberately wrong) real-time generator
    # is refuted, and the reduced search is genuinely smaller — the
    # counterexample found inside the quotient must still replay
    off = fingerprint(LazyCachingProtocol(p=2, b=1, v=1), mode="fast", por="off")
    on = fingerprint(LazyCachingProtocol(p=2, b=1, v=1), mode="fast", por="on")
    assert off.verdict == on.verdict == "violation"
    assert on.states < off.states
    assert on.cx_replays is True
    assert not compare_fingerprints(off, on)


# ----------------------------------------------------------------------
# seeded sweeps: DSL degradation + reduction-bearing protocols
# ----------------------------------------------------------------------


def _dsl_protocols(rng):
    """Seeded parameter draws over the DSL builders — none declares a
    ``por_spec``, so ``--por on`` must be the *exact* unreduced
    search (the degradation contract).  The interpreted MSI spec is
    held at p=2 (p=3 is a ~50 s search — slow-tier territory)."""
    yield serial_spec(p=rng.randint(2, 3), b=1, v=rng.randint(1, 2)), True
    yield msi_spec(p=2, b=1, v=rng.randint(1, 2)), True
    yield buggy_msi_spec(p=2, b=1, v=1), False


@pytest.mark.parametrize("strategy", ["bfs", "dfs"])
def test_seeded_dsl_protocols_por_degrades_to_identity(rng, strategy):
    for proto, sc in _dsl_protocols(rng):
        off = fingerprint(
            proto, mode="fast", strategy=strategy, por="off", exhaustive=sc
        )
        on = fingerprint(
            proto, mode="fast", strategy=strategy, por="on", exhaustive=sc
        )
        assert on.verdict == off.verdict
        assert (on.states, on.transitions) == (off.states, off.transitions)
        if not sc:
            assert on.verdict == "violation" and on.cx_replays is True


@pytest.mark.parametrize("strategy", ["bfs", "dfs"])
@pytest.mark.parametrize("workers", [1, 2])
def test_lazy_por_verdict_parity_across_configs(strategy, workers):
    proto = LazyCachingProtocol(p=2, b=1, v=1)
    off = fingerprint(
        proto, lazy_caching_st_order(), mode="fast",
        strategy=strategy, workers=workers, por="off",
    )
    on = fingerprint(
        proto, lazy_caching_st_order(), mode="fast",
        strategy=strategy, workers=workers, por="on",
    )
    assert off.verdict == on.verdict == "verified"
    assert on.states <= off.states
    assert not compare_fingerprints(off, on)


@pytest.mark.parametrize("reduce", ["off", "full"])
def test_msi_por_composes_with_symmetry_reduction(reduce):
    proto = MSIProtocol(p=2, b=1, v=2)
    off = fingerprint(proto, mode="fast", reduce=reduce, por="off")
    on = fingerprint(proto, mode="fast", reduce=reduce, por="on")
    assert off.verdict == on.verdict == "verified"
    # b=1: POR is the identity, with or without the symmetry quotient
    assert (on.states, on.transitions) == (off.states, off.transitions)
    assert not compare_fingerprints(off, on)


def test_cross_por_contract_fields_are_exactly_the_promise():
    # the contract names only what survives an ample quotient: the
    # verdict and that every counterexample replays — counts and the
    # canonical violating state legitimately differ across POR levels
    assert CROSS_POR_FIELDS == frozenset({"verdict", "cx_replays"})


# ----------------------------------------------------------------------
# harness, checkpoint, CLI, and gauge semantics
# ----------------------------------------------------------------------


def test_por_level_is_search_state_on_the_checkpoint(tmp_path):
    cp = tmp_path / "lazy.ckpt"
    first = run_verification(
        LazyCachingProtocol(p=2, b=1, v=1), lazy_caching_st_order(),
        budget=Budget(states=100), checkpoint_path=str(cp), por="on",
    )
    assert not first.complete and cp.exists()
    # an explicit mismatch is a usage error, exactly like --reduce
    with pytest.raises(CheckpointError, match="--por on"):
        run_verification(resume_from=str(cp), por="off")
    # inheriting the checkpointed level resumes the same reduced
    # search: the depth proviso reads the checkpointed discovery tree,
    # so the resumed run matches an uninterrupted one exactly
    resumed = run_verification(resume_from=str(cp))
    fresh = run_verification(
        LazyCachingProtocol(p=2, b=1, v=1), lazy_caching_st_order(), por="on"
    )
    assert resumed.sequentially_consistent and resumed.complete
    assert resumed.stats.states == fresh.stats.states
    assert resumed.stats.transitions == fresh.stats.transitions


def test_pre_por_checkpoint_resumes_with_level_off(tmp_path):
    # checkpoints written before the POR layer pickled ProductSearch /
    # ComposedSystem without the por attributes (CHECKPOINT_VERSION
    # deliberately not bumped); they load as --por off and resume
    from repro.harness import Checkpoint
    from repro.modelcheck.product import ProductSearch

    search = ProductSearch(MSIProtocol(p=2, b=1, v=2), mode="fast")
    search.run(Budget(states=30).start().should_stop)
    del search.__dict__["por"]
    del search.system.__dict__["por"]
    del search.system.__dict__["por_selector"]
    path = tmp_path / "old.ckpt"
    Checkpoint.of(search).save(str(path))
    cp = Checkpoint.load(str(path))
    assert cp.search.por == "off"
    assert cp.search.system.por_selector is None
    res = cp.search.run()
    assert res.ok


def test_por_gauges_published_when_reducing():
    from repro.core.verify import verify_protocol
    from repro.obs import MetricsRegistry, Telemetry

    t = Telemetry(registry=MetricsRegistry())
    verify_protocol(
        LazyCachingProtocol(p=2, b=1, v=1), lazy_caching_st_order(),
        mode="fast", por="on", telemetry=t,
    )
    g = t.registry.snapshot().gauges
    assert g["por.ample_hits"] > 0
    assert g["por.deferred"] > 0
    assert "por.fallbacks" in g

    plain = Telemetry(registry=MetricsRegistry())
    verify_protocol(
        LazyCachingProtocol(p=2, b=1, v=1), lazy_caching_st_order(),
        mode="fast", por="off", telemetry=plain,
    )
    assert not any(
        k.startswith("por.") for k in plain.registry.snapshot().gauges
    )


def test_unknown_por_level_raises_por_error():
    from repro.engine.por import PorError, build_por

    with pytest.raises(PorError, match="banana"):
        build_por(MSIProtocol(p=2, b=1, v=1), "banana")


def test_causal_model_rejects_por():
    from repro.models import ModelError

    with pytest.raises(ModelError):
        fingerprint(MSIProtocol(p=2, b=1, v=1), mode="fast",
                    model="causal", por="on")


def _cli(capsys, *argv):
    from repro.cli import main

    code = main(list(argv))
    return code, capsys.readouterr().out


def test_cli_por_flag_verifies_and_reports(capsys):
    code, _out = _cli(capsys, "verify", "lazy", "--por", "on")
    assert code == 0


def test_cli_por_resume_mismatch_is_exit_2(capsys, tmp_path):
    cp = tmp_path / "lazy.ckpt"
    code, out = _cli(
        capsys, "verify", "lazy", "--por", "on",
        "--budget-states", "100", "--checkpoint", str(cp),
    )
    assert code == 0 and cp.exists()
    code, out = _cli(capsys, "verify", "--resume", str(cp), "--por", "off")
    assert code == 2
    assert "--por on" in out


def test_cli_causal_with_por_is_exit_2(capsys):
    code, out = _cli(
        capsys, "verify", "msi", "--model", "causal", "--por", "on"
    )
    assert code == 2


def test_cli_verify_help_documents_por_resume_semantics(capsys):
    with pytest.raises(SystemExit) as exc:
        _cli(capsys, "verify", "--help")
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "--por" in out
    assert "resume as --por off" in out
