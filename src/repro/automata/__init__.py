"""Finite-automata substrate: DFAs/NFAs, product and complement,
language inclusion/equivalence, and the protocol → trace-DFA bridge
used by the Definition 3.1(i) trace-equivalence check."""

from .dfa import DFA, dfa_from_table
from .inclusion import InclusionResult, equivalent, included_in
from .minimize import equivalent_hk, minimize, num_states
from .nfa import NFA
from .protocol_nfa import protocol_nfa, trace_dfa, traces_equivalent

__all__ = [
    "DFA",
    "NFA",
    "dfa_from_table",
    "included_in",
    "equivalent",
    "equivalent_hk",
    "minimize",
    "num_states",
    "InclusionResult",
    "protocol_nfa",
    "trace_dfa",
    "traces_equivalent",
]
