"""k-graph descriptors: streaming bounded-bandwidth graphs (Section 3.2).

A k-bandwidth-bounded graph is serialised as a string of three symbol
kinds over the ID space ``1..k+1``:

* :class:`NodeSym` — "a new node, identified by this ID (recycling the
  ID from whichever node held it), optionally labelled";
* :class:`EdgeSym` — "an edge between the nodes currently holding these
  two IDs, optionally labelled";
* :class:`AddIdSym` — ``add-ID(I, I')``: grant ID ``I'`` (taken from
  its current holder, if any) to the node currently holding ``I``.

:class:`DescriptorDecoder` implements the paper's formal ID-set
semantics and reconstructs the full graph; :func:`encode_graph` is a
constructive Lemma 3.2 — it turns any k-bandwidth-bounded graph into a
descriptor using at most ``k+1`` IDs (retiring each node as soon as its
last incident edge has been emitted).  :func:`format_descriptor` /
:func:`parse_descriptor` give the paper's comma-separated text syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Union

from ..graphs import Digraph, node_bandwidth

__all__ = [
    "NodeSym",
    "EdgeSym",
    "AddIdSym",
    "FreeIdSym",
    "Symbol",
    "DescriptorError",
    "DescriptorDecoder",
    "decode",
    "encode_graph",
    "format_descriptor",
    "parse_descriptor",
    "LabelledGraph",
]


class DescriptorError(ValueError):
    """A malformed descriptor (e.g. an edge naming an unheld ID)."""


def _merge_labels(old: Any, new: Any) -> Any:
    """Combine labels of a re-mentioned edge: flag-like labels (e.g.
    ``EdgeKind``) are OR-ed, anything else is replaced by the newer."""
    if old is None:
        return new
    if new is None:
        return old
    try:
        return old | new
    except TypeError:
        return new


@dataclass(frozen=True, slots=True)
class NodeSym:
    """A node descriptor: ID plus optional label."""

    id: int
    label: Any = None


@dataclass(frozen=True, slots=True)
class EdgeSym:
    """An edge descriptor ``(src, dst)`` plus optional label."""

    src: int
    dst: int
    label: Any = None


@dataclass(frozen=True, slots=True)
class AddIdSym:
    """``add-ID(id, new_id)`` — alias ``new_id`` onto ``id``'s node."""

    id: int
    new_id: int


@dataclass(frozen=True, slots=True)
class FreeIdSym:
    """``free-ID(id)`` — retire an ID without assigning it to a node.

    An implementation extension of the paper's alphabet: the described
    graph is unchanged (the paper frees an ID only implicitly, by
    reusing it on the next node), but announcing retirement eagerly
    lets the streaming checkers run their per-node exit checks — and
    forget the node — as soon as the observer knows no further edge
    can touch it.  This keeps the reachable joint state space small
    during product model checking; semantically it commutes with the
    later reuse the paper relies on.
    """

    id: int


Symbol = Union[NodeSym, EdgeSym, AddIdSym, FreeIdSym]


@dataclass
class LabelledGraph:
    """A decoded descriptor: the graph over nodes ``1..n`` plus labels."""

    graph: Digraph
    node_labels: List[Any]  # index i-1 -> label of node i

    @property
    def n(self) -> int:
        return len(self.node_labels)


class DescriptorDecoder:
    """Stream a descriptor and reconstruct the full (unbounded) graph.

    Follows the ID-set semantics of Section 3.2 exactly, including
    multi-ID nodes created by ``add-ID``.  With ``strict=True``
    (default) an edge or add-ID referencing an ID held by no node
    raises :class:`DescriptorError`; with ``strict=False`` such symbols
    are silently dropped, matching the formal definition (which simply
    produces no edge).
    """

    def __init__(self, max_id: Optional[int] = None, *, strict: bool = True):
        self.max_id = max_id
        self.strict = strict
        self.graph = Digraph()
        self.node_labels: List[Any] = []
        self._owner: Dict[int, int] = {}  # ID -> node number holding it
        self._idset: Dict[int, Set[int]] = {}  # node number -> held IDs

    # ------------------------------------------------------------------
    def _check_id(self, i: int) -> None:
        if i < 1 or (self.max_id is not None and i > self.max_id):
            raise DescriptorError(f"ID {i} outside 1..{self.max_id}")

    def _release(self, i: int) -> None:
        """ID ``i`` is being taken for other use: remove it from its
        current holder's ID-set (the holder may become inactive)."""
        holder = self._owner.pop(i, None)
        if holder is not None:
            ids = self._idset[holder]
            ids.discard(i)
            if not ids:
                del self._idset[holder]

    def feed(self, sym: Symbol) -> None:
        if isinstance(sym, NodeSym):
            self._check_id(sym.id)
            self._release(sym.id)
            n = len(self.node_labels) + 1
            self.node_labels.append(sym.label)
            self.graph.add_node(n)
            self._owner[sym.id] = n
            self._idset[n] = {sym.id}
        elif isinstance(sym, AddIdSym):
            self._check_id(sym.id)
            self._check_id(sym.new_id)
            target = self._owner.get(sym.id)
            if sym.new_id != sym.id:
                self._release(sym.new_id)
            if target is None:
                if self.strict:
                    raise DescriptorError(f"add-ID({sym.id},{sym.new_id}): ID {sym.id} unheld")
                return
            self._owner[sym.new_id] = target
            self._idset[target].add(sym.new_id)
        elif isinstance(sym, FreeIdSym):
            self._check_id(sym.id)
            self._release(sym.id)
        elif isinstance(sym, EdgeSym):
            self._check_id(sym.src)
            self._check_id(sym.dst)
            u = self._owner.get(sym.src)
            v = self._owner.get(sym.dst)
            if u is None or v is None:
                if self.strict:
                    raise DescriptorError(
                        f"edge ({sym.src},{sym.dst}): unheld ID "
                        f"({'src' if u is None else 'dst'})"
                    )
                return
            # a re-mentioned edge accumulates annotations (an observer
            # may add e.g. a forced annotation to an existing po edge
            # in a later step); non-mergeable labels are replaced
            self.graph.add_edge(u, v, sym.label, merge=_merge_labels)
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a descriptor symbol: {sym!r}")

    def feed_all(self, symbols: Iterable[Symbol]) -> "DescriptorDecoder":
        for s in symbols:
            self.feed(s)
        return self

    def result(self) -> LabelledGraph:
        return LabelledGraph(self.graph, self.node_labels)

    def active_nodes(self) -> Dict[int, Set[int]]:
        """node number -> its current (non-empty) ID-set."""
        return {n: set(ids) for n, ids in self._idset.items()}


def decode(
    symbols: Iterable[Symbol], max_id: Optional[int] = None, *, strict: bool = True
) -> LabelledGraph:
    """One-shot decode of a whole descriptor."""
    return DescriptorDecoder(max_id, strict=strict).feed_all(symbols).result()


# ----------------------------------------------------------------------
# Lemma 3.2: encoding a k-bandwidth-bounded graph
# ----------------------------------------------------------------------
def encode_graph(
    graph: Digraph,
    node_labels: Optional[Sequence[Any]] = None,
    *,
    k: Optional[int] = None,
) -> List[Symbol]:
    """Serialise a graph over nodes ``1..n`` into a k-graph descriptor.

    ``k`` defaults to the graph's actual node bandwidth, so the
    descriptor uses IDs ``1..bandwidth+1``.  The encoder walks nodes in
    order; a node's ID is retired (made reusable) once every node it
    shares an edge with has been emitted.  By the bandwidth bound, a
    free ID always exists — asserted, since this *is* Lemma 3.2.
    """
    n = len(graph)
    if node_labels is not None and len(node_labels) != n:
        raise ValueError("node_labels length must equal node count")
    if k is None:
        k = node_bandwidth(graph, n)
    pool_size = k + 1

    # last[u]: index of the last node sharing an edge with u
    last: Dict[int, int] = {}
    for u in range(1, n + 1):
        m = u
        for v in graph.successors(u):
            m = max(m, v)
        for v in graph.predecessors(u):
            m = max(m, v)
        last[u] = m

    free: List[int] = list(range(pool_size, 0, -1))  # pop() yields 1 first
    id_of: Dict[int, int] = {}
    retire_at: Dict[int, List[int]] = {}  # step i -> nodes whose last == i
    out: List[Symbol] = []

    for i in range(1, n + 1):
        if not free:
            raise AssertionError(
                f"Lemma 3.2 violated: no free ID at node {i} with k={k}"
            )
        ident = free.pop()
        out.append(NodeSym(ident, node_labels[i - 1] if node_labels else None))
        id_of[i] = ident
        retire_at.setdefault(last[i], []).append(i)
        # emit every edge between i and an earlier (still live) node
        for u in sorted(graph.predecessors(i)):
            if u == i:
                out.append(EdgeSym(ident, ident, graph.label(i, i)))
            elif u < i:
                out.append(EdgeSym(id_of[u], ident, graph.label(u, i)))
        for v in sorted(graph.successors(i)):
            if v < i:
                out.append(EdgeSym(ident, id_of[v], graph.label(i, v)))
        # retire nodes whose last incident edge has now been emitted
        for u in retire_at.pop(i, ()):
            free.append(id_of.pop(u))
    return out


# ----------------------------------------------------------------------
# Text syntax (the paper's comma-separated rendering)
# ----------------------------------------------------------------------
def format_descriptor(symbols: Iterable[Symbol]) -> str:
    """Render symbols in the paper's style::

        1, ST(P1,B1,1), 2, LD(P2,B1,1), (1,2), inh, add-ID(1,3)
    """
    parts: List[str] = []
    for s in symbols:
        if isinstance(s, NodeSym):
            parts.append(str(s.id))
            if s.label is not None:
                parts.append(_label_str(s.label))
        elif isinstance(s, EdgeSym):
            parts.append(f"({s.src},{s.dst})")
            if s.label is not None:
                parts.append(_label_str(s.label))
        elif isinstance(s, AddIdSym):
            parts.append(f"add-ID({s.id},{s.new_id})")
        else:
            parts.append(f"free-ID({s.id})")
    return ", ".join(parts)


def _label_str(label: Any) -> str:
    short = getattr(label, "short", None)
    return short() if callable(short) else str(label)


def parse_descriptor(text: str) -> List[Symbol]:
    """Parse the textual syntax back into symbols (labels stay strings).

    Inverse of :func:`format_descriptor` up to label types: node and
    edge labels come back as their string renderings.
    """
    tokens = _tokenise(text)
    out: List[Symbol] = []
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok.startswith("add-ID("):
            inner = tok[len("add-ID(") : -1]
            a, b = inner.split(",")
            out.append(AddIdSym(int(a), int(b)))
            i += 1
        elif tok.startswith("free-ID("):
            out.append(FreeIdSym(int(tok[len("free-ID(") : -1])))
            i += 1
        elif tok.startswith("("):
            a, b = tok[1:-1].split(",", 1)
            label = None
            if i + 1 < len(tokens) and not _is_structural(tokens[i + 1]):
                label = tokens[i + 1]
                i += 1
            out.append(EdgeSym(int(a), int(b), label))
            i += 1
        elif tok.isdigit():
            label = None
            if i + 1 < len(tokens) and not _is_structural(tokens[i + 1]):
                label = tokens[i + 1]
                i += 1
            out.append(NodeSym(int(tok), label))
            i += 1
        else:
            raise DescriptorError(f"unexpected token {tok!r}")
    return out


def _is_structural(tok: str) -> bool:
    return (
        tok.isdigit()
        or tok.startswith("(")
        or tok.startswith("add-ID(")
        or tok.startswith("free-ID(")
    )


def _tokenise(text: str) -> List[str]:
    """Split on top-level commas (commas inside parentheses stay)."""
    out: List[str] = []
    depth = 0
    cur: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
            cur.append(ch)
        elif ch == ")":
            depth -= 1
            cur.append(ch)
        elif ch == "," and depth == 0:
            tok = "".join(cur).strip()
            if tok:
                out.append(tok)
            cur = []
        else:
            cur.append(ch)
    tok = "".join(cur).strip()
    if tok:
        out.append(tok)
    return out
