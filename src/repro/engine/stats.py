"""Exploration statistics (deprecated re-export).

The stats dataclasses moved to the telemetry layer
(:mod:`repro.obs.stats`) so every observability surface — registry,
traces, per-shard merges — shares one definition.  This module keeps
the historical import path working, and lets pickled checkpoint
payloads (format v3 ships one ``ExplorationStats`` per shard under
this module path) load unchanged.

.. deprecated::
   No first-party code imports this path any more — everything is on
   :mod:`repro.obs.stats`.  The shim exists *only* so old pickles
   (checkpoints, saved shard payloads) resolve, and pickles reference
   classes, never functions — so only ``ExplorationStats`` is
   re-exported.  New code must import from ``repro.obs.stats``.  Do
   not add exports here.
"""

import warnings

from ..obs.stats import ExplorationStats

__all__ = ["ExplorationStats"]

warnings.warn(
    "repro.engine.stats is deprecated; import ExplorationStats from "
    "repro.obs.stats (this shim exists only so v3 checkpoints "
    "unpickle)",
    DeprecationWarning,
    stacklevel=2,
)
