"""Graphviz (DOT) export for constraint graphs, witness descriptors,
and counterexamples.

Pure string generation — no Graphviz dependency; feed the output to
``dot -Tpng`` (or any online renderer) to see the structures the paper
draws: Figure 3-style constraint graphs with edge kinds as styles, and
counterexample cycles highlighted.

Conventions:

* ST nodes are boxes, LD nodes are ellipses, ⊥-loads dashed;
* edge styles: **po** solid black, **STo** bold blue, **inh** green,
  **forced** red dashed; combined annotations combine styles and show
  the paper's hyphenated label;
* nodes are numbered in trace order, matching the library everywhere.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .core.constraint_graph import ConstraintGraph, EdgeKind
from .core.descriptor import Symbol, decode
from .core.operations import BOTTOM, Load, Operation
from .graphs import find_cycle

__all__ = ["constraint_graph_dot", "descriptor_dot", "counterexample_dot"]

_EDGE_STYLE = {
    EdgeKind.PO: 'color="black"',
    EdgeKind.STO: 'color="blue", penwidth=2',
    EdgeKind.INH: 'color="darkgreen"',
    EdgeKind.FORCED: 'color="red", style=dashed',
}


def _node_line(i: int, op: Optional[Operation], *, highlight: bool = False) -> str:
    if op is None:
        label, shape, extra = f"n{i}", "circle", ""
    else:
        label = f"{i}: {op!r}"
        shape = "ellipse" if isinstance(op, Load) else "box"
        extra = ", style=dashed" if isinstance(op, Load) and op.value == BOTTOM else ""
    if highlight:
        extra += ', color="red", penwidth=2'
    return f'  n{i} [label="{label}", shape={shape}{extra}];'


def _edge_attrs(kind: EdgeKind, *, highlight: bool = False) -> str:
    parts: List[str] = []
    styles = [s for k, s in _EDGE_STYLE.items() if kind & k]
    if styles:
        parts.append(styles[0])
    label = kind.short()
    if label != "plain":
        parts.append(f'label="{label}"')
    if highlight:
        parts.append("penwidth=3")
    return ", ".join(parts)


def constraint_graph_dot(
    cg: ConstraintGraph, *, name: str = "constraint_graph",
    highlight_cycle: bool = True,
) -> str:
    """Render a constraint graph; if it is cyclic and
    ``highlight_cycle``, one cycle is drawn bold red."""
    cyc_nodes: set = set()
    cyc_edges: set = set()
    if highlight_cycle:
        cyc = find_cycle(cg.graph)
        if cyc:
            cyc_nodes = set(cyc)
            cyc_edges = set(zip(cyc, cyc[1:]))
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for i in range(1, len(cg.trace) + 1):
        lines.append(_node_line(i, cg.op(i), highlight=i in cyc_nodes))
    for (u, v) in sorted(cg.graph.edges()):
        kind = cg.graph.label(u, v) or EdgeKind.NONE
        lines.append(f"  n{u} -> n{v} [{_edge_attrs(kind, highlight=(u, v) in cyc_edges)}];")
    lines.append("}")
    return "\n".join(lines)


def descriptor_dot(symbols: Iterable[Symbol], *, name: str = "witness") -> str:
    """Decode a witness descriptor and render the described graph."""
    labelled = decode(symbols, strict=False)
    cg = ConstraintGraph(labelled.node_labels)
    for (u, v) in labelled.graph.edges():
        cg.add_edge(u, v, labelled.graph.label(u, v) or EdgeKind.NONE)
    return constraint_graph_dot(cg, name=name)


def counterexample_dot(cx, *, name: str = "counterexample") -> str:
    """Render a counterexample's witness graph with its cycle bold."""
    return descriptor_dot(cx.symbols, name=name)
