"""Small shared utilities (table rendering for benches and examples)."""

from .tables import format_table, print_table

__all__ = ["format_table", "print_table"]
