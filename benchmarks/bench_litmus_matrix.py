"""E-matrix — litmus corpus × protocol zoo.

For every corpus program and a representative protocol set, compare
the outcomes the protocol actually produces against the SC reference:
SC protocols must match SC exactly; the TSO store buffer must show
exactly the TSO-allowed extras; the fenced variant must match SC
again.  One table, many claims.
"""

from repro.litmus import (
    CORPUS,
    outcomes_on_protocol,
    outcomes_sc,
    outcomes_tso,
    sb_chain,
)
from repro.memory import (
    DragonProtocol,
    FencedStoreBufferProtocol,
    MSIProtocol,
    StoreBufferProtocol,
    WriteThroughProtocol,
)
from repro.util import format_table


def _protocols_for(prog):
    p = max(2, prog.num_procs)
    b = max(prog.blocks)
    v = max(1, prog.max_value)
    return [
        ("MSI", MSIProtocol(p=p, b=b, v=v)),
        ("Dragon", DragonProtocol(p=p, b=b, v=v)),
        ("WriteThrough", WriteThroughProtocol(p=p, b=b, v=v)),
        ("FencedSB", FencedStoreBufferProtocol(p=p, b=b, v=v)),
        ("StoreBuffer", StoreBufferProtocol(p=p, b=b, v=v)),
    ]


# three-or-fewer-processor programs keep the product searches small
PROGRAMS = [prog for prog in CORPUS if prog.num_procs <= 3] + [sb_chain(3)]


def test_litmus_matrix(benchmark, show):
    rows = []

    def compute():
        rows.clear()
        for prog in PROGRAMS:
            sc = outcomes_sc(prog)
            tso = outcomes_tso(prog)
            cells = [prog.name, len(sc), len(tso - sc)]
            for name, proto in _protocols_for(prog):
                got = outcomes_on_protocol(proto, prog)
                if got == sc:
                    cells.append("=SC")
                elif got == tso:
                    cells.append("=TSO")
                elif got < sc:
                    cells.append(f"⊂SC ({len(got)})")
                else:
                    cells.append(f"other ({len(got)})")
            rows.append(tuple(cells))
        return rows

    benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        format_table(
            ["test", "#SC", "#TSO-extra", "MSI", "Dragon", "WriteThrough",
             "FencedSB", "StoreBuffer"],
            rows,
            title="Litmus corpus × protocol zoo (outcome-set comparison)",
        )
    )
    for row in rows:
        # every SC protocol matches SC exactly on every program
        assert row[3] == row[4] == row[5] == row[6] == "=SC", row
        # the TSO store buffer matches TSO exactly (=SC where TSO=SC)
        assert row[7] in ("=TSO", "=SC"), row
