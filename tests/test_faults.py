"""The fault-injection framework (src/repro/faults/).

The framework's contract is double-sided: every seeded non-SC fault
must be *rejected* by the verification pipeline, and faults that keep
the protocol SC (duplicated idempotent messages) must *not* produce a
counterexample.  These tests pin both sides, plus the plumbing
(composition of tracking maps, fault discovery, applicability errors).
"""

import pytest

from repro.core.protocol import FRESH
from repro.core.verify import verify_protocol
from repro.faults import (
    EXPECT_REJECT,
    FAULT_KINDS,
    FaultInapplicable,
    FaultSpec,
    FaultyProtocol,
    apply_faults,
    compose_copies,
    fault_matrix,
    standard_faults,
)
from repro.faults.spec import discover_structure
from repro.memory import MSIProtocol, SerialMemory, WriteThroughProtocol


# ---------------------------------------------------------------- specs


def test_fault_spec_validates_kind():
    with pytest.raises(ValueError):
        FaultSpec("x", "not-a-kind", EXPECT_REJECT)


def test_fault_spec_validates_expectation():
    with pytest.raises(ValueError):
        FaultSpec("x", "stale-load", "definitely-fine")


def test_discover_structure_finds_msi_messages():
    names, has_copies = discover_structure(MSIProtocol(p=2, b=1, v=2))
    assert "AcquireM" in names and "AcquireS" in names
    assert has_copies


def test_standard_faults_cover_every_applicable_kind():
    proto = MSIProtocol(p=2, b=2, v=2)
    specs = standard_faults(proto)
    kinds = {s.kind for s in specs}
    # MSI has internal messages, copies, >1 location, and the
    # invalidate-on-acquire knob: the full taxonomy applies
    assert kinds == set(FAULT_KINDS)


def test_standard_faults_respect_applicability():
    # serial memory: one location, no invalidation knob, no messages
    specs = standard_faults(SerialMemory(p=2, b=1, v=2))
    kinds = {s.kind for s in specs}
    assert "corrupt-ld-location" not in kinds
    assert "skip-invalidation" not in kinds
    assert "drop-internal" not in kinds
    assert "stale-load" in kinds and "perturb-storder" in kinds


# ---------------------------------------------------- copies composition


def test_compose_copies_chains_sources():
    # first hop: loc 5 <- loc 3; second hop: loc 7 <- loc 5
    assert compose_copies({5: 3}, {7: 5}) == {5: 3, 7: 3}


def test_compose_copies_fresh_propagates():
    assert compose_copies({5: FRESH}, {7: 5}) == {5: FRESH, 7: FRESH}


def test_compose_copies_independent_destinations():
    assert compose_copies({5: 3}, {6: 2}) == {5: 3, 6: 2}


# -------------------------------------------------------- applying faults


def test_apply_skip_invalidation_needs_the_knob():
    spec = FaultSpec("skip-invalidation", "skip-invalidation", EXPECT_REJECT)
    with pytest.raises(FaultInapplicable):
        apply_faults(SerialMemory(p=2, b=1, v=2), None, [spec])


def test_faulty_protocol_describe_names_faults():
    proto = MSIProtocol(p=2, b=1, v=2)
    spec = next(s for s in standard_faults(proto) if s.kind == "stale-load")
    faulty, _gen = apply_faults(proto, None, [spec])
    assert isinstance(faulty, FaultyProtocol)
    assert "stale-load" in faulty.describe()


# ------------------------------------------- the double-sided contract


def _verify_with_fault(proto, kind):
    spec = next(s for s in standard_faults(proto) if s.kind == kind)
    faulty, gen = apply_faults(proto, None, [spec])
    return verify_protocol(faulty, gen)


@pytest.mark.parametrize(
    "kind",
    ["stale-load", "corrupt-ld-location", "corrupt-st-location",
     "drop-copies", "perturb-storder", "skip-invalidation"],
)
def test_msi_rejects_every_non_sc_fault(kind):
    proto = MSIProtocol(p=2, b=2, v=2)
    res = _verify_with_fault(proto, kind)
    assert not res.sequentially_consistent, kind
    assert res.counterexample is not None


def test_duplicated_message_stays_sc():
    res = _verify_with_fault(MSIProtocol(p=2, b=1, v=2), "dup-internal")
    assert res.counterexample is None
    assert res.sequentially_consistent


def test_dropped_message_never_yields_counterexample():
    # dropping only removes runs: no new behaviour, hence no violation
    # (the protocol may become non-quiescible, which is a different verdict)
    res = _verify_with_fault(MSIProtocol(p=2, b=1, v=2), "drop-internal")
    assert res.counterexample is None


def test_write_through_rejects_stale_load():
    res = _verify_with_fault(WriteThroughProtocol(p=2, b=1, v=2), "stale-load")
    assert not res.sequentially_consistent


# -------------------------------------------------------------- matrix


def test_fault_matrix_on_serial_is_clean():
    report = fault_matrix(["serial"])
    assert report.ok, report.summary()
    assert not report.unmet
    # baseline row plus at least the two universally applicable faults
    assert len(report.entries) >= 3


def test_fault_matrix_summary_mentions_failures():
    report = fault_matrix(["serial"])
    assert "expectations met" in report.summary()
    assert "MATRIX FAILED" not in report.summary()


def test_fault_matrix_counts_expectations():
    report = fault_matrix(["serial"], include_baseline=False)
    assert all(e.met for e in report.entries)
