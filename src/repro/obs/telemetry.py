"""The one handle instrumented code takes: registry + trace + progress.

A :class:`Telemetry` bundles the three optional sinks —
:class:`~repro.obs.metrics.MetricsRegistry`,
:class:`~repro.obs.trace.TraceWriter`,
:class:`~repro.obs.progress.ProgressReporter` — behind cheap guarded
methods.  Every pipeline entry point accepts ``telemetry=None``;
``None`` (the default everywhere) means *no* telemetry call is ever
made on a hot path, which is the zero-overhead contract tier-1
timings rely on.

Telemetry is deliberately **not** stored on search engines or
``ProductSearch`` objects: those are pickled into checkpoints, and a
telemetry handle (open file, stderr stream) must not travel with
them.  It is threaded through ``run(...)`` calls instead, so a
resumed checkpoint attaches a fresh handle.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from .flight import FlightRecorder
from .metrics import MetricsRegistry
from .progress import ProgressReporter
from .stats import ExplorationStats
from .trace import TraceWriter

__all__ = ["Telemetry"]

#: default seconds between trace ``heartbeat`` events when no progress
#: reporter (whose interval then governs) is attached
DEFAULT_HEARTBEAT_S = 1.0


class Telemetry:
    """Optional registry, trace writer and progress reporter in one.

    All methods are safe no-ops for whichever sinks are absent; the
    caller's only obligation is to skip calls entirely when it holds
    ``None`` instead of a Telemetry (the zero-cost-off contract).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceWriter] = None,
        progress: Optional[ProgressReporter] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        self.registry = registry
        self.trace = trace
        self.progress = progress
        self.flight = flight
        self._t0 = time.perf_counter()
        self._hb_last = self._t0
        interval = progress.interval if progress is not None else DEFAULT_HEARTBEAT_S
        self._hb_interval = interval

    # ------------------------------------------------------------------
    def elapsed_s(self) -> float:
        return time.perf_counter() - self._t0

    def emit(self, ev: str, **fields) -> None:
        """Write a trace event to the trace log and/or the flight
        recorder ring (no-op when neither sink is attached)."""
        if self.trace is not None:
            self.trace.emit(ev, **fields)
        if self.flight is not None:
            self.flight.emit(ev, **fields)

    def span(self, name: str):
        """A *hierarchical* timer span: nests under any enclosing
        :meth:`span` in the same registry (the timer's name is the
        ``/``-joined path — see ``MetricsRegistry.span``) and, when a
        trace or flight sink is attached, emits a ``span`` event with
        the path and duration on exit.  Per-state engine timings never
        come through here — they use the registry directly — so the
        event stream stays coarse (phases, rounds)."""
        return _TelemetrySpan(self, name)

    # ------------------------------------------------------------------
    def heartbeat(
        self,
        stats: ExplorationStats,
        frontier: Optional[int] = None,
        force: bool = False,
    ) -> None:
        """Rate-limited progress line + trace ``heartbeat`` event.

        Driven from the engines' cooperative polling points; internal
        rate limiting keeps the cost of a non-due call to one clock
        read and a comparison.
        """
        now = time.perf_counter()
        if not force and now - self._hb_last < self._hb_interval:
            return
        self._hb_last = now
        if self.progress is not None:
            self.progress.tick(stats, frontier=frontier, force=True)
        if self.trace is not None or self.flight is not None:
            self.emit(
                "heartbeat",
                states=stats.states,
                transitions=stats.transitions,
                frontier=frontier if frontier is not None else stats.peak_frontier,
                elapsed_s=round(self.elapsed_s(), 6),
            )

    # ------------------------------------------------------------------
    def start_run(
        self,
        *,
        protocol: str,
        mode: str,
        strategy: str = "bfs",
        workers: int = 1,
        **extra,
    ) -> None:
        """Emit the ``run_start`` trace event (no-op without a trace)."""
        self.emit(
            "run_start",
            protocol=protocol,
            mode=mode,
            strategy=strategy,
            workers=workers,
            **extra,
        )

    def finish_run(self, *, verdict: str, states: int, **extra) -> None:
        """Emit the closing pair of trace events: a full ``metrics``
        snapshot (when a registry is attached) followed by ``run_end``.
        Extra keyword fields (``stats``, ``shards``…) ride on
        ``run_end`` for ``repro metrics`` to summarise."""
        if self.trace is None and self.flight is None:
            return
        if self.registry is not None:
            self.emit("metrics", snapshot=self.registry.snapshot().as_dict())
        self.emit(
            "run_end",
            verdict=verdict,
            states=states,
            elapsed_s=round(self.elapsed_s(), 6),
            **extra,
        )

    # ------------------------------------------------------------------
    def record_search(
        self,
        stats: ExplorationStats,
        shard_stats: Optional[Sequence[ExplorationStats]] = None,
    ) -> None:
        """Publish a finished (or paused) search's counters as gauges.

        ``search.*`` gauges hold the aggregate — by the engines'
        determinism contract they are identical across frontier
        strategies and worker counts for completed searches (the
        differential suite compares them).  ``shard<i>.*`` gauges hold
        the per-shard split, merged in worker-index order.
        """
        reg = self.registry
        if reg is None:
            return
        reg.gauge("search.states", stats.states)
        reg.gauge("search.transitions", stats.transitions)
        reg.gauge("search.quiescent", stats.quiescent_states)
        reg.gauge("search.interned", stats.interned_states)
        reg.gauge_max("search.peak_frontier", stats.peak_frontier)
        reg.gauge_max("search.max_depth", stats.max_depth)
        if shard_stats is not None:
            for i, s in enumerate(shard_stats):
                reg.gauge(f"shard{i}.states", s.states)
                reg.gauge(f"shard{i}.transitions", s.transitions)
                reg.gauge(f"shard{i}.interned", s.interned_states)
                reg.gauge_max(f"shard{i}.peak_frontier", s.peak_frontier)

    def record_reduction(self, reduction) -> None:
        """Publish a run's symmetry-reduction counters as
        ``reduction.*`` gauges (see :mod:`repro.engine.reduction`).

        ``orbit_hits`` counts the canonicalizations won by a
        non-identity group element (states that merged into another
        representative's orbit); ``canon_s`` is the wall-clock span
        spent in orbit minimization.  These are *not* part of the
        deterministic gauge contract: which representative of an orbit
        is reached first — and therefore how many canonicalizations
        are hits — depends on search order, and under ``workers > 1``
        the counters cover the reporting process only (workers
        accumulate onto fork()ed copies that never travel back).
        """
        reg = self.registry
        if reg is None:
            return
        reg.gauge("reduction.level_group", reduction.group_size)
        reg.gauge("reduction.states", reduction.counters.states)
        reg.gauge("reduction.orbit_hits", reduction.counters.orbit_hits)
        reg.gauge("reduction.canon_s", round(reduction.counters.canon_s, 6))

    def record_por(self, selector) -> None:
        """Publish a run's partial-order-reduction counters as ``por.*``
        gauges (see :mod:`repro.engine.por`).

        ``ample_hits`` counts expansions that took a proper ample
        subset, ``deferred`` the steps those expansions skipped, and
        ``fallbacks`` the expansions that fell back to the full step
        set (no proper candidate, proviso failure, or a protocol with
        no POR declaration).  Like the reduction counters these are
        *not* part of the deterministic gauge contract: whether the
        C3 proviso passes depends on interning order, and under
        ``workers > 1`` the counters cover the reporting process only.
        """
        reg = self.registry
        if reg is None:
            return
        reg.gauge("por.ample_hits", selector.counters.ample_hits)
        reg.gauge("por.deferred", selector.counters.deferred)
        reg.gauge("por.fallbacks", selector.counters.fallbacks)

    def record_store(self, stats_list, sharded: bool = False) -> None:
        """Publish a run's state-store capacity counters as ``store.*``
        gauges (see :mod:`repro.engine.intern`).

        ``stats_list`` holds one ``store_stats()`` dict per store —
        one for a sequential search, one per shard payload for a
        parallel one (``sharded=True`` also publishes the per-shard
        ``shard<i>.store.*`` split).  Count-like figures sum across
        shards; ``index_probe_avg`` is re-derived from the summed raw
        ``probes``/``lookups`` so the aggregate is lookup-weighted,
        not an average of averages.

        Determinism: ``store.resident_keys``/``spilled_keys`` are
        deterministic for a fixed run *policy* (backend, budget,
        worker count) but — unlike the ``search.*`` gauges — change
        with it, so they are not part of the deterministic gauge
        contract.  ``store.io_s`` is wall-clock and never comparable.
        """
        reg = self.registry
        if reg is None or not stats_list:
            return
        resident = spilled = bytes_ = probes = lookups = 0
        io_s = 0.0
        for i, st in enumerate(stats_list):
            resident += st["resident_keys"]
            spilled += st["spilled_keys"]
            bytes_ += st["spill_bytes"]
            probes += st["probes"]
            lookups += st["lookups"]
            io_s += st["io_s"]
            if sharded:
                reg.gauge(f"shard{i}.store.resident_keys", st["resident_keys"])
                reg.gauge(f"shard{i}.store.spilled_keys", st["spilled_keys"])
        reg.gauge("store.resident_keys", resident)
        reg.gauge("store.spilled_keys", spilled)
        reg.gauge("store.spill_bytes", bytes_)
        reg.gauge(
            "store.index_probe_avg",
            round(probes / lookups, 6) if lookups else 0.0,
        )
        if io_s:
            reg.observe_s("phase.search/store", io_s)

    def close(self) -> None:
        if self.trace is not None:
            self.trace.close()


class _TelemetrySpan:
    """Context manager behind :meth:`Telemetry.span`: a nesting
    registry span plus a ``span`` trace/flight event on exit."""

    __slots__ = ("_telemetry", "_name", "_inner", "_t0")

    def __init__(self, telemetry: Telemetry, name: str) -> None:
        self._telemetry = telemetry
        self._name = name
        self._inner = None

    def __enter__(self) -> "_TelemetrySpan":
        reg = self._telemetry.registry
        if reg is not None:
            self._inner = reg.span(name=self._name)
            self._inner.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        dt = time.perf_counter() - self._t0
        path = self._name
        if self._inner is not None:
            path = self._inner.path or self._name
            self._inner.__exit__(*exc)
        t = self._telemetry
        if t.trace is not None or t.flight is not None:
            t.emit("span", name=self._name, path=path, total_s=round(dt, 6))
