"""Exploration statistics (re-export).

The stats object now lives with the engine
(:mod:`repro.engine.stats`) so the engine has no dependency back into
this package; this module keeps the historical import path working.
"""

from ..engine.stats import ExplorationStats

__all__ = ["ExplorationStats"]
