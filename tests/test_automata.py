"""DFA/NFA substrate and the trace-equivalence bridge."""

import pytest

from repro.automata import (
    DFA,
    NFA,
    dfa_from_table,
    equivalent,
    included_in,
    trace_dfa,
    traces_equivalent,
)
from repro.core.operations import LD, ST
from repro.memory import SerialMemory


def _even_zeros() -> DFA:
    return dfa_from_table(
        "e",
        {("e", 0): "o", ("o", 0): "e", ("e", 1): "e", ("o", 1): "o"},
        accepting={"e"},
    )


def _all_words() -> DFA:
    return dfa_from_table("q", {("q", 0): "q", ("q", 1): "q"}, accepting={"q"})


def test_dfa_accepts():
    d = _even_zeros()
    assert d.accepts([])
    assert d.accepts([0, 0, 1])
    assert not d.accepts([0])
    with pytest.raises(ValueError):
        d.accepts([7])


def test_dfa_complement():
    c = _even_zeros().complement()
    assert not c.accepts([])
    assert c.accepts([0])


def test_dfa_intersection_and_emptiness():
    d = _even_zeros().intersect(_even_zeros().complement())
    assert d.is_empty()
    both = _even_zeros().intersect(_all_words())
    assert both.accepts([0, 0])
    assert not both.is_empty()


def test_find_accepted_word_is_shortest():
    odd = _even_zeros().complement()
    assert odd.find_accepted_word() == [0]


def test_inclusion_and_equivalence():
    even, everything = _even_zeros(), _all_words()
    assert included_in(even, everything)
    res = included_in(everything, even)
    assert not res
    assert res.counterexample == [0]
    assert equivalent(even, even)
    assert not equivalent(even, everything)


def test_reachable_states():
    assert set(_even_zeros().reachable_states()) == {"e", "o"}


def test_nfa_determinize():
    # NFA accepting words over {a,b} ending in 'a'
    def delta(q, s):
        if s is NFA.EPSILON:
            return ()
        if q == 0:
            return (0, 1) if s == "a" else (0,)
        return ()

    n = NFA(frozenset([0]), frozenset("ab"), delta, lambda q: q == 1)
    assert n.accepts("ba")
    assert not n.accepts("ab")
    d = n.determinize()
    assert d.accepts("ba") and not d.accepts("ab") and not d.accepts("")


def test_nfa_projection_hides_symbols():
    # 0 --x--> 1 --a--> 2 : hiding 'x' makes "a" accepted
    def delta(q, s):
        if s is NFA.EPSILON:
            return ()
        if (q, s) == (0, "x"):
            return (1,)
        if (q, s) == (1, "a"):
            return (2,)
        return ()

    n = NFA(frozenset([0]), frozenset("xa"), delta, lambda q: q == 2)
    assert not n.accepts("a")
    projected = n.project(lambda s: s == "a")
    assert projected.accepts("a")
    assert projected.determinize().accepts("a")


def test_protocol_trace_dfa_accepts_exactly_traces():
    proto = SerialMemory(p=1, b=1, v=1)
    d = trace_dfa(proto)
    assert d.accepts([])  # prefix-closed
    assert d.accepts([ST(1, 1, 1), LD(1, 1, 1)])
    assert not d.accepts([LD(1, 1, 1)])  # value before any store
    assert d.accepts([LD(1, 1, 0), ST(1, 1, 1)])


def test_traces_equivalent_reflexive():
    a = SerialMemory(p=1, b=1, v=1)
    b = SerialMemory(p=1, b=1, v=1)
    assert traces_equivalent(a, b)


def test_traces_equivalent_detects_difference():
    a = SerialMemory(p=1, b=1, v=1)
    b = SerialMemory(p=1, b=1, v=2)  # more store values
    res = traces_equivalent(a, b)
    assert not res
    assert res.counterexample is not None


def test_atomic_msi_is_trace_equivalent_to_serial_memory():
    """A neat corollary of atomicity: because AcquireM invalidates all
    other copies before any store, atomic-bus MSI never exhibits a
    stale read — its trace language *equals* serial memory's."""
    from repro.memory import MSIProtocol

    serial = SerialMemory(p=2, b=1, v=1)
    msi = MSIProtocol(p=2, b=1, v=1)
    assert traces_equivalent(serial, msi, max_states=100_000)


def test_lazy_caching_traces_strictly_larger_than_serial():
    """Lazy caching produces non-serial (but SC) traces — a processor
    reads a stale cached value after the store has reached memory —
    so serial ⊆ lazy holds strictly."""
    from repro.memory import LazyCachingProtocol

    serial = SerialMemory(p=2, b=1, v=1)
    lazy = LazyCachingProtocol(p=2, b=1, v=1)
    ds, dl = trace_dfa(serial), trace_dfa(lazy)
    alpha = ds.alphabet | dl.alphabet

    def widen(d):
        return DFA(d.initial, alpha, lambda q, s: d.delta(q, s) if s in d.alphabet else None, d.accepting)

    assert included_in(widen(ds), widen(dl), max_states=100_000)
    back = included_in(widen(dl), widen(ds), max_states=100_000)
    assert not back
    # the separating trace is SC but not serial
    from repro.core.serial import is_serial_trace, is_sequentially_consistent_trace

    word = tuple(back.counterexample)
    assert not is_serial_trace(word)
    assert is_sequentially_consistent_trace(word)
