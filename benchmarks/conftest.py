"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures/tables (or one
of the supplementary experiments in DESIGN.md) and prints the result
rows — visibly, bypassing pytest's capture — in addition to timing the
underlying computation with pytest-benchmark.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print a rendered table bypassing output capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
