"""k-graph descriptors: decoder semantics, Lemma 3.2 encoder, and the
textual syntax (Section 3.2)."""

import pytest
from hypothesis import given, settings

from repro.core.descriptor import (
    AddIdSym,
    DescriptorDecoder,
    DescriptorError,
    EdgeSym,
    FreeIdSym,
    NodeSym,
    decode,
    encode_graph,
    format_descriptor,
    parse_descriptor,
)
from repro.core.operations import LD, ST
from repro.graphs import Digraph, node_bandwidth

from .conftest import dag_strategy, digraph_strategy


def test_decode_simple_graph():
    syms = [NodeSym(1, "a"), NodeSym(2, "b"), EdgeSym(1, 2, "e")]
    g = decode(syms)
    assert g.n == 2
    assert g.node_labels == ["a", "b"]
    assert g.graph.has_edge(1, 2)
    assert g.graph.label(1, 2) == "e"


def test_id_recycling_creates_new_node():
    syms = [NodeSym(1), NodeSym(1), EdgeSym(1, 1)]
    g = decode(syms)
    assert g.n == 2
    assert g.graph.has_edge(2, 2)  # the edge refers to the *new* node
    assert not g.graph.has_edge(1, 1)


def test_add_id_aliases_node():
    syms = [NodeSym(1), AddIdSym(1, 2), NodeSym(1), EdgeSym(2, 1)]
    # node 1 gets alias 2; ID 1 is then recycled for node 2; the edge
    # (2,1) joins old node 1 (via alias) to node 2
    g = decode(syms)
    assert g.n == 2
    assert g.graph.has_edge(1, 2)


def test_add_id_steals_new_id_from_holder():
    syms = [NodeSym(1), NodeSym(2), AddIdSym(1, 2), EdgeSym(2, 2)]
    g = decode(syms)
    # ID 2 moved from node 2 to node 1: the self-edge lands on node 1
    assert g.graph.has_edge(1, 1)


def test_free_id_retires_without_new_node():
    syms = [NodeSym(1), FreeIdSym(1)]
    g = decode(syms)
    assert g.n == 1
    dec = DescriptorDecoder().feed_all(syms)
    assert dec.active_nodes() == {}


def test_strict_mode_rejects_dangling_references():
    with pytest.raises(DescriptorError):
        decode([EdgeSym(1, 2)])
    with pytest.raises(DescriptorError):
        decode([NodeSym(1), EdgeSym(1, 2)])
    with pytest.raises(DescriptorError):
        decode([AddIdSym(3, 1)])


def test_lenient_mode_drops_dangling_references():
    g = decode([NodeSym(1), EdgeSym(1, 2)], strict=False)
    assert g.n == 1
    assert g.graph.num_edges() == 0


def test_max_id_enforced():
    with pytest.raises(DescriptorError):
        decode([NodeSym(5)], max_id=4)


def test_figure3_paper_descriptor():
    """The exact ID-recycled descriptor string from Section 3.2."""
    trace = (ST(1, 1, 1), LD(2, 1, 1), ST(1, 1, 2), LD(2, 1, 1), LD(2, 1, 2))
    syms = [
        NodeSym(1, trace[0]),
        NodeSym(2, trace[1]),
        EdgeSym(1, 2, "inh"),
        NodeSym(3, trace[2]),
        EdgeSym(1, 3, "po-STo"),
        NodeSym(4, trace[3]),
        EdgeSym(1, 4, "inh"),
        EdgeSym(2, 4, "po"),
        EdgeSym(4, 3, "forced"),
        NodeSym(1, trace[4]),  # ID 1 recycled for node 5
        EdgeSym(3, 1, "inh"),
        EdgeSym(4, 1, "po"),
    ]
    g = decode(syms, max_id=4)
    assert g.n == 5
    expected = {(1, 2), (1, 3), (1, 4), (2, 4), (4, 3), (3, 5), (4, 5)}
    assert set(g.graph.edges()) == expected


@settings(max_examples=60)
@given(dag_strategy())
def test_encode_decode_round_trip(g):
    labels = [f"n{i}" for i in range(1, len(g) + 1)]
    syms = encode_graph(g, labels)
    back = decode(syms)
    assert back.n == len(g)
    assert back.node_labels == labels
    assert set(back.graph.edges()) == set(g.edges())


@settings(max_examples=60)
@given(digraph_strategy())
def test_encoder_respects_id_bound(g):
    k = node_bandwidth(g)
    syms = encode_graph(g)
    used = {s.id for s in syms if isinstance(s, NodeSym)}
    assert used <= set(range(1, k + 2)), "Lemma 3.2: IDs within 1..k+1"
    back = decode(syms, max_id=k + 1)
    assert set(back.graph.edges()) == set(g.edges())


def test_encoder_preserves_edge_labels():
    g = Digraph()
    g.add_edge(1, 2, "hello")
    syms = encode_graph(g)
    back = decode(syms)
    assert back.graph.label(1, 2) == "hello"


def test_encoder_handles_self_loop():
    g = Digraph()
    g.add_edge(1, 1)
    back = decode(encode_graph(g))
    assert back.graph.has_edge(1, 1)


def test_format_and_parse_round_trip():
    syms = [
        NodeSym(1, "ST(P1,B1,1)"),
        NodeSym(2),
        EdgeSym(1, 2, "inh"),
        AddIdSym(1, 3),
        FreeIdSym(2),
    ]
    text = format_descriptor(syms)
    assert "add-ID(1,3)" in text and "free-ID(2)" in text
    parsed = parse_descriptor(text)
    assert parsed == syms


def test_format_uses_edgekind_short_names():
    from repro.core.constraint_graph import EdgeKind

    text = format_descriptor([NodeSym(1), NodeSym(2), EdgeSym(1, 2, EdgeKind.PO | EdgeKind.STO)])
    assert "po-STo" in text


def test_parse_rejects_garbage():
    with pytest.raises(DescriptorError):
        parse_descriptor("hello, world")
