"""MESI — MSI plus the E(xclusive-clean) state.

``AcquireS`` grants E instead of S when no other processor holds a
valid copy; a store from E upgrades to M *silently* (no bus action,
the defining optimisation of MESI).  Everything else follows MSI.

State encoding matches :class:`~repro.memory.msi.MSIProtocol` with a
fourth cache state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..core.operations import BOTTOM, InternalAction
from ..core.protocol import FRESH, Tracking, Transition
from .base import (
    LocationMap,
    MemoryProtocol,
    mem_cache_por_spec,
    mem_cache_symmetry_spec,
    replace_at,
)

__all__ = ["MESIProtocol", "I", "S", "E", "M"]

I, S, E, M = 0, 1, 2, 3


class MESIProtocol(MemoryProtocol):
    """Atomic-bus MESI (sequentially consistent)."""

    def __init__(self, p: int = 2, b: int = 1, v: int = 2, *, allow_evict: bool = True):
        super().__init__(p, b, v)
        self.allow_evict = allow_evict
        self._locs = LocationMap()
        self._locs.add_group("mem", b)
        self._locs.add_group("cache", p * b)
        self.num_locations = self._locs.total

    def mem_loc(self, block: int) -> int:
        return self._locs.loc("mem", block - 1)

    def cache_loc(self, proc: int, block: int) -> int:
        return self._locs.loc("cache", (proc - 1) * self.b + (block - 1))

    def _idx(self, proc: int, block: int) -> int:
        return (proc - 1) * self.b + (block - 1)

    # ------------------------------------------------------------------
    def initial_state(self) -> Tuple:
        return (
            (BOTTOM,) * self.b,
            (I,) * (self.p * self.b),
            (BOTTOM,) * (self.p * self.b),
        )

    def may_load_bottom(self, state: Tuple, block: int) -> bool:
        mem, cstate, cval = state
        if mem[block - 1] == BOTTOM:
            return True
        return any(
            cstate[self._idx(P, block)] != I and cval[self._idx(P, block)] == BOTTOM
            for P in self.procs
        )

    def symmetry_spec(self):
        # same index-uniform layout as MSI; E is just a fourth sort-free
        # control value
        return mem_cache_symmetry_spec()

    def por_spec(self):
        # same per-block footprints as MSI (the silent E->M upgrade is
        # a ST, which the spec already makes same-block dependent)
        return mem_cache_por_spec(self)

    # ------------------------------------------------------------------
    def transitions(self, state: Tuple) -> Iterable[Transition]:
        mem, cstate, cval = state
        for P in self.procs:
            for B in self.blocks:
                i = self._idx(P, B)
                st = cstate[i]
                if st != I:
                    yield self.load(P, B, cval[i], state, self.cache_loc(P, B))
                if st in (E, M):
                    for V in self.values:
                        # silent E -> M upgrade on first store
                        ns = (
                            mem,
                            replace_at(cstate, i, M),
                            replace_at(cval, i, V),
                        )
                        yield self.store(P, B, V, ns, self.cache_loc(P, B))
                if st == I:
                    yield self._acquire_s(state, P, B)
                if st in (I, S):
                    yield self._acquire_m(state, P, B)
                if self.allow_evict and st != I:
                    yield self._evict(state, P, B)

    # ------------------------------------------------------------------
    def _holders(self, cstate: Tuple, block: int):
        return [Q for Q in self.procs if cstate[self._idx(Q, block)] != I]

    def _owner(self, cstate: Tuple, block: int):
        for Q in self.procs:
            if cstate[self._idx(Q, block)] in (E, M):
                return Q
        return None

    def _acquire_s(self, state: Tuple, P: int, B: int) -> Transition:
        mem, cstate, cval = state
        i = self._idx(P, B)
        owner = self._owner(cstate, B)
        copies: Dict[int, int] = {}
        if owner is not None:
            j = self._idx(owner, B)
            # owner (E or M) supplies data and downgrades to S; a
            # modified owner also updates memory
            if cstate[j] == M:
                mem = replace_at(mem, B - 1, cval[j])
                copies[self.mem_loc(B)] = self.cache_loc(owner, B)
            cstate = replace_at(cstate, j, S)
            copies[self.cache_loc(P, B)] = self.cache_loc(owner, B)
            data = cval[j]
            new_state = S
        else:
            copies[self.cache_loc(P, B)] = self.mem_loc(B)
            data = mem[B - 1]
            # exclusive-clean grant when nobody else holds the block
            new_state = S if self._holders(cstate, B) else E
        cstate = replace_at(cstate, i, new_state)
        cval = replace_at(cval, i, data)
        return Transition(
            InternalAction("AcquireS", (P, B)), (mem, cstate, cval), Tracking(copies=copies)
        )

    def _acquire_m(self, state: Tuple, P: int, B: int) -> Transition:
        mem, cstate, cval = state
        i = self._idx(P, B)
        owner = self._owner(cstate, B)
        copies: Dict[int, int] = {}
        if owner is not None:
            j = self._idx(owner, B)
            copies[self.cache_loc(P, B)] = self.cache_loc(owner, B)
            data = cval[j]
        else:
            copies[self.cache_loc(P, B)] = self.mem_loc(B)
            data = mem[B - 1]
        for Q in self.procs:
            if Q == P:
                continue
            j = self._idx(Q, B)
            if cstate[j] != I:
                cstate = replace_at(cstate, j, I)
                cval = replace_at(cval, j, BOTTOM)
                copies[self.cache_loc(Q, B)] = FRESH
        cstate = replace_at(cstate, i, M)
        cval = replace_at(cval, i, data)
        return Transition(
            InternalAction("AcquireM", (P, B)), (mem, cstate, cval), Tracking(copies=copies)
        )

    def _evict(self, state: Tuple, P: int, B: int) -> Transition:
        mem, cstate, cval = state
        i = self._idx(P, B)
        copies: Dict[int, int] = {self.cache_loc(P, B): FRESH}
        if cstate[i] == M:
            mem = replace_at(mem, B - 1, cval[i])
            copies[self.mem_loc(B)] = self.cache_loc(P, B)
        cstate = replace_at(cstate, i, I)
        cval = replace_at(cval, i, BOTTOM)
        return Transition(
            InternalAction("Evict", (P, B)), (mem, cstate, cval), Tracking(copies=copies)
        )
