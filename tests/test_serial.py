"""Serial-trace semantics and serial reorderings (Section 2.2)."""


import pytest
from hypothesis import given, settings

from repro.core.operations import BOTTOM, LD, ST
from repro.core.serial import (
    apply_reordering,
    find_serial_reordering,
    is_sequentially_consistent_trace,
    is_serial_reordering,
    is_serial_trace,
)

from .conftest import ops_strategy, random_sc_trace


def test_empty_trace_is_serial():
    assert is_serial_trace(())


def test_serial_trace_examples():
    assert is_serial_trace((ST(1, 1, 1), LD(2, 1, 1)))
    assert is_serial_trace((LD(1, 1, BOTTOM), ST(1, 1, 1), LD(2, 1, 1)))
    assert not is_serial_trace((LD(1, 1, 1),))  # value before any ST
    assert not is_serial_trace((ST(1, 1, 2), LD(1, 1, 1)))
    assert not is_serial_trace((ST(1, 1, 1), ST(2, 1, 2), LD(1, 1, 1)))


def test_bottom_load_after_store_not_serial():
    assert not is_serial_trace((ST(1, 1, 1), LD(2, 1, BOTTOM)))


def test_blocks_are_independent():
    assert is_serial_trace((ST(1, 1, 1), LD(2, 2, BOTTOM), LD(2, 1, 1)))


def test_apply_reordering_validates_perm():
    trace = (ST(1, 1, 1), LD(2, 1, 1))
    assert apply_reordering(trace, [2, 1]) == (LD(2, 1, 1), ST(1, 1, 1))
    with pytest.raises(ValueError):
        apply_reordering(trace, [1, 1])


def test_is_serial_reordering_checks_program_order():
    # two ops of the same processor may not swap
    trace = (ST(1, 1, 1), LD(1, 1, BOTTOM))
    assert not is_serial_reordering(trace, [2, 1])
    # with different processors the swap is fine
    trace = (ST(1, 1, 1), LD(2, 1, BOTTOM))
    assert is_serial_reordering(trace, [2, 1])
    assert not is_serial_reordering(trace, [1, 2])  # LD ⊥ after ST not serial


def test_find_serial_reordering_figure1_cases():
    # Figure 1's legal SC outcome r1=1, r2=0: LD(y)=0 then LD(x)=1
    trace = (ST(1, 1, 1), ST(1, 2, 2), LD(2, 2, BOTTOM), LD(2, 1, 1))
    perm = find_serial_reordering(trace)
    assert perm is not None
    assert is_serial_reordering(trace, perm)
    # the forbidden outcome r1=0, r2=2
    bad = (ST(1, 1, 1), ST(1, 2, 2), LD(2, 2, 2), LD(2, 1, BOTTOM))
    assert find_serial_reordering(bad) is None


def test_sb_litmus_trace_not_sc():
    trace = (ST(1, 1, 1), LD(1, 2, BOTTOM), ST(2, 2, 1), LD(2, 1, BOTTOM))
    assert not is_sequentially_consistent_trace(trace)


def test_corr_new_then_old_not_sc():
    trace = (ST(1, 1, 1), LD(2, 1, 1), LD(2, 1, BOTTOM))
    assert not is_sequentially_consistent_trace(trace)


def test_single_processor_trace_sc_iff_serial():
    serial = (ST(1, 1, 1), LD(1, 1, 1), ST(1, 1, 2), LD(1, 1, 2))
    not_serial = (ST(1, 1, 1), LD(1, 1, 2))
    assert find_serial_reordering(serial) == [1, 2, 3, 4]
    assert find_serial_reordering(not_serial) is None


@settings(max_examples=50)
@given(ops_strategy)
def test_found_reorderings_are_always_valid(trace):
    perm = find_serial_reordering(trace)
    if perm is not None:
        assert is_serial_reordering(trace, perm)


def test_serial_traces_are_sc(rng):
    for _ in range(30):
        t = random_sc_trace(rng, rng.randint(0, 12))
        assert is_serial_trace(t)
        perm = find_serial_reordering(t)
        assert perm is not None


def test_memoisation_handles_adversarial_width(rng):
    # p processors of independent blocks: exponentially many merges,
    # memoisation must keep this fast
    trace = []
    for P in (1, 2):
        for i in range(6):
            trace.append(ST(P, P, 1 + i % 2))
    perm = find_serial_reordering(tuple(trace))
    assert perm is not None
