"""Normalized benchmark entries and trace summaries.

This module owns the ``BENCH_verification.json`` format.  Two writers
feed it:

* ``benchmarks/record_verification.py`` — the trajectory recorder:
  :func:`build_record` / :func:`write_record` produce the whole file
  (baseline, current, parallel, speedups);
* ``repro metrics --record`` — one-off run entries: a run's trace is
  summarised (:func:`summarize_trace`) and appended under ``"runs"``
  by :func:`append_run_entry` in the same normalized shape.

:func:`check_states_per_sec` is the CI gate: it compares a run's
states/sec against the checked-in baseline for the same workload and
reports a regression beyond tolerance (timing-derived, so the
tolerance is a *tripwire* for gross regressions, not a precision
benchmark — see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .metrics import MetricsSnapshot
from .trace import TraceError, read_trace

__all__ = [
    "RunSummary",
    "summarize_trace",
    "load_summary",
    "normalized_entry",
    "append_run_entry",
    "build_record",
    "write_record",
    "check_states_per_sec",
]


# ----------------------------------------------------------------------
# trace summaries
# ----------------------------------------------------------------------


@dataclass
class RunSummary:
    """What ``repro metrics`` knows about one run."""

    verdict: str
    states: int
    elapsed_s: float
    protocol: Optional[str] = None
    workers: Optional[int] = None
    reduce: Optional[str] = None  #: symmetry-reduction level of the run
    por: Optional[str] = None  #: partial-order-reduction level of the run
    snapshot: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    shards: List[dict] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)
    events: int = 0
    complete: bool = True  #: False when reconstructed from a partial trace
    #: whether a full metrics snapshot was actually present (a trace
    #: with no ``metrics`` event keeps the default empty snapshot, and
    #: ``repro metrics A B`` refuses to diff it)
    has_snapshot: bool = False

    @property
    def states_per_sec(self) -> Optional[float]:
        if self.elapsed_s <= 0:
            return None
        return self.states / self.elapsed_s

    def format(self) -> str:
        from ..util import format_table

        head = [
            f"run: {self.protocol or '(unknown protocol)'}"
            + (f"  workers={self.workers}" if self.workers else "")
            + (
                f"  reduce={self.reduce}"
                if self.reduce and self.reduce != "off"
                else ""
            )
            + (f"  por={self.por}" if self.por and self.por != "off" else ""),
            f"verdict: {self.verdict}"
            + ("" if self.complete else "  (partial trace — run did not finish)"),
            f"states: {self.states}  elapsed: {self.elapsed_s:.3f}s"
            + (
                f"  ({self.states_per_sec:.0f} states/s)"
                if self.states_per_sec is not None
                else ""
            ),
        ]
        parts = ["\n".join(head)]
        if self.shards:
            rows = [
                (
                    s.get("shard"),
                    s.get("states"),
                    s.get("transitions"),
                    s.get("interned_states"),
                    s.get("peak_frontier"),
                )
                for s in self.shards
            ]
            rows.append((
                "total",
                sum(s.get("states", 0) for s in self.shards),
                sum(s.get("transitions", 0) for s in self.shards),
                sum(s.get("interned_states", 0) for s in self.shards),
                sum(s.get("peak_frontier", 0) for s in self.shards),
            ))
            parts.append(
                format_table(
                    ["shard", "states", "transitions", "interned", "peak frontier"],
                    rows,
                    title="Per-shard exploration",
                )
            )
        snap_text = self.snapshot.format(title="Metrics snapshot")
        if "(empty)" not in snap_text:
            parts.append(snap_text)
        return "\n\n".join(parts)


def summarize_trace(events: List[dict]) -> RunSummary:
    """Fold a validated event list into a :class:`RunSummary`.

    A complete trace ends with ``run_end`` (and usually ``metrics``);
    a partial one — the run crashed or is still going — is summarised
    from its last heartbeat/round instead, flagged ``complete=False``.
    """
    summary = RunSummary(verdict="(no events)", states=0, elapsed_s=0.0, complete=False)
    summary.events = len(events)
    for ev in events:
        kind = ev["ev"]
        if kind == "run_start":
            summary.protocol = ev.get("protocol")
            summary.workers = ev.get("workers")
            summary.reduce = ev.get("reduce")
            summary.por = ev.get("por")
        elif kind in ("heartbeat", "round"):
            summary.verdict = "(in progress)"
            summary.states = ev.get("states", summary.states)
            summary.elapsed_s = ev.get("elapsed_s", summary.elapsed_s)
            summary.complete = False
        elif kind == "metrics":
            summary.snapshot = MetricsSnapshot.from_dict(ev["snapshot"])
            summary.has_snapshot = True
        elif kind == "run_end":
            summary.verdict = ev["verdict"]
            summary.states = ev["states"]
            summary.elapsed_s = ev["elapsed_s"]
            summary.shards = ev.get("shards", [])
            summary.stats = ev.get("stats", {})
            summary.complete = True
    return summary


def load_summary(path: str) -> RunSummary:
    """Load a run summary from a trace JSONL *or* a bare metrics
    snapshot JSON file (``{"counters": ..., ...}``).

    A trace whose *final* line is torn (the run crashed mid-write) is
    summarised from its complete prefix — necessarily as a partial run
    (``complete`` only comes from a ``run_end`` event, which a torn
    tail cannot be)."""
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            obj = json.loads(text)
        except json.JSONDecodeError:
            obj = None
        if isinstance(obj, dict) and "ev" not in obj:
            snap = MetricsSnapshot.from_dict(obj)
            return RunSummary(
                verdict=str(obj.get("verdict", "(snapshot)")),
                states=int(obj.get("gauges", {}).get("search.states", 0)),
                elapsed_s=float(obj.get("elapsed_s", 0.0)),
                snapshot=snap,
                has_snapshot=True,
            )
    return summarize_trace(
        read_trace(text.splitlines(keepends=True), allow_torn_tail=True)
    )


# ----------------------------------------------------------------------
# BENCH_verification.json
# ----------------------------------------------------------------------


def normalized_entry(
    workload: str,
    seconds: float,
    states: int,
    *,
    workers: int = 1,
    reduce: str = "off",
    por: str = "off",
    source: str = "repro-metrics",
) -> dict:
    """The one shape every appended benchmark entry uses.

    ``reduce`` and ``por`` are provenance, not different metrics: a
    reduced run's ``states`` is the quotient (or ample-set-pruned)
    count, so its states/sec is not comparable to an unreduced entry
    of the same workload — record reduced runs under distinct workload
    names (``mesi_p3b1v1_reduce_full`` / ``msi_p2b2v1_por_on``, not
    the bare workload)."""
    return {
        "workload": workload,
        "seconds": round(seconds, 6),
        "states": states,
        "states_per_sec": round(states / seconds, 3) if seconds > 0 else None,
        "workers": workers,
        "reduce": reduce,
        "por": por,
        "source": source,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
    }


def append_run_entry(bench_path: Union[str, Path], entry: dict) -> dict:
    """Append a normalized entry under ``"runs"`` (file created if
    missing); returns the updated record."""
    path = Path(bench_path)
    record = json.loads(path.read_text()) if path.exists() else {}
    record.setdefault("runs", []).append(entry)
    path.write_text(json.dumps(record, indent=2) + "\n")
    return record


def build_record(
    *,
    current: Dict[str, dict],
    parallel: Dict[str, dict],
    baseline: Dict[str, dict],
    baseline_note: str,
    rounds: int,
    cpu_count: Optional[int],
    previous: Optional[dict] = None,
    reduction: Optional[Dict[str, dict]] = None,
    por: Optional[Dict[str, dict]] = None,
    store: Optional[Dict[str, dict]] = None,
) -> dict:
    """Assemble the full benchmark record (the trajectory file).

    ``current``/``baseline`` map workload name to
    ``{"seconds", "states"}``; ``parallel`` maps workload name to the
    per-worker-count timing block; ``reduction`` maps workload name to
    the ``--reduce off`` vs reduced-level comparison, ``por`` to the
    ``--por off`` vs ``--por on`` comparison, and ``store`` to the
    ``--store mem`` vs ``--store disk`` capacity comparison (``None``
    carries any previous section forward).  Any ``"runs"`` entries already in
    ``previous`` are carried forward — appended one-off measurements
    are part of the trajectory too.
    """
    record = {
        "benchmark": "E-verify representative verification wall time",
        "rounds": rounds,
        "policy": "best-of-N wall seconds per workload",
        "baseline": {"note": baseline_note, "workloads": baseline},
        "current": {"workloads": current},
        "parallel": {
            "cpu_count": cpu_count,
            "note": (
                "sharded engine (--workers N) on the headline workload; "
                "states are asserted bit-identical to workers=1. Wall-clock "
                "speedup requires cpu_count cores to shard across — on a "
                "single-core machine the IPC overhead makes workers>1 "
                "strictly slower, which this section records honestly."
            ),
            "workloads": parallel,
        },
        "speedup": {},
    }
    if reduction is None and previous:
        reduction = previous.get("reduction", {}).get("workloads")
    if reduction:
        record["reduction"] = {
            "note": (
                "symmetry reduction (--reduce) on the acceptance workload: "
                "identical verdict on the quotient state space. state_gain "
                "is unreduced/reduced interned states (deterministic); "
                "speedup is wall-clock and machine-dependent."
            ),
            "workloads": reduction,
        }
    if por is None and previous:
        por = previous.get("por", {}).get("workloads")
    if por:
        record["por"] = {
            "note": (
                "partial-order reduction (--por) on representative "
                "workloads: identical verdict and counterexample on the "
                "ample-set-pruned state space. state_gain is full/reduced "
                "explored states (deterministic per config); a gain of "
                "1.0 means the protocol's independence structure admits "
                "no deferral at that size (e.g. any single-block snoopy "
                "instance)."
            ),
            "workloads": por,
        }
    if store is None and previous:
        store = previous.get("store", {}).get("workloads")
    if store:
        record["store"] = {
            "note": (
                "state-store backends (--store) on the capacity workload: "
                "verdict and state count asserted bit-identical between "
                "mem and disk while the disk run's resident budget sits "
                "far below the closure's footprint. states_per_sec and "
                "peak_rss_kb are wall-clock/machine figures; "
                "resident_keys/spilled_keys are reproducible per config."
            ),
            "workloads": store,
        }
    for name, cur in current.items():
        base = baseline.get(name)
        if base and base.get("seconds"):
            record["speedup"][name] = round(base["seconds"] / cur["seconds"], 3)
    if previous and previous.get("runs"):
        record["runs"] = previous["runs"]
    return record


def write_record(path: Union[str, Path], record: dict) -> None:
    Path(path).write_text(json.dumps(record, indent=2) + "\n")


# ----------------------------------------------------------------------
# the CI regression gate
# ----------------------------------------------------------------------


def check_states_per_sec(
    bench_path: Union[str, Path],
    workload: str,
    summary: RunSummary,
    *,
    max_regression: float = 0.05,
) -> Tuple[bool, str]:
    """Compare a run's states/sec against the checked-in baseline.

    The baseline is ``current.workloads[workload]`` in the benchmark
    file (states/seconds).  Returns ``(ok, message)``: not-ok when the
    run's throughput fell more than ``max_regression`` below baseline.
    State-count mismatches (the workload isn't actually the same
    search) are also not-ok — a "fast" run that explored fewer states
    is not faster.
    """
    path = Path(bench_path)
    if not path.exists():
        raise TraceError(f"benchmark file {bench_path!r} does not exist")
    record = json.loads(path.read_text())
    entry = record.get("current", {}).get("workloads", {}).get(workload)
    if not entry or not entry.get("seconds"):
        raise TraceError(
            f"workload {workload!r} has no baseline in {bench_path!r} "
            f"(known: {', '.join(sorted(record.get('current', {}).get('workloads', {})))})"
        )
    if not summary.complete:
        return False, "trace is partial (no run_end event): cannot judge throughput"
    base_sps = entry["states"] / entry["seconds"]
    run_sps = summary.states_per_sec
    if run_sps is None:
        return False, "run reports zero elapsed time"
    if summary.states != entry["states"]:
        return False, (
            f"state-count mismatch: run explored {summary.states} states, "
            f"baseline workload {workload!r} explores {entry['states']} — "
            f"not the same search"
        )
    ratio = run_sps / base_sps
    msg = (
        f"{workload}: {run_sps:.0f} states/s vs baseline {base_sps:.0f} states/s "
        f"({ratio:.2f}x)"
    )
    if ratio < 1.0 - max_regression:
        return False, msg + f" — REGRESSION beyond {max_regression:.0%}"
    return True, msg
