"""The two-level cache hierarchy (DSL showcase)."""


from repro.core.operations import LD, ST, InternalAction, Load
from repro.core.protocol import enumerate_runs
from repro.core.serial import is_sequentially_consistent_trace
from repro.core.verify import check_run, verify_protocol
from repro.modelcheck import explore
from repro.pdl import two_level_spec
from repro.pdl.two_level import INV, VALID


def test_verifies_sequentially_consistent():
    res = verify_protocol(two_level_spec(p=2, b=1, v=1))
    assert res.sequentially_consistent, res.summary()


def test_exhaustive_short_traces_sc():
    proto = two_level_spec(p=2, b=1, v=1)
    for t in enumerate_runs(proto, 5, trace_only=True):
        assert is_sequentially_consistent_trace(t), t


def test_three_level_data_flow_tracked():
    """ST → L1 → (through) L2 → memory → L2 → L1 → LD, all via derived
    labels."""
    proto = two_level_spec(p=2, b=1, v=2)
    run = (
        InternalAction("Fill2", (1,)),
        InternalAction("Fill1", (1, 1)),
        ST(1, 1, 2),                      # writes L1, through to L2
        InternalAction("Evict1", (1, 1)),
        InternalAction("Evict2", (1,)),   # L2 -> memory
        InternalAction("Fill2", (1,)),    # memory -> L2 again
        InternalAction("Fill1", (2, 1)),  # L2 -> P2's L1
        LD(2, 1, 2),                      # P2 sees P1's value
    )
    assert proto.is_run(run)
    assert check_run(proto, run).ok


def test_store_invalidates_other_l1():
    proto = two_level_spec(p=2, b=1, v=1)
    run = (
        InternalAction("Fill2", (1,)),
        InternalAction("Fill1", (1, 1)),
        InternalAction("Fill1", (2, 1)),
        ST(1, 1, 1),
    )
    state = proto.run_states(run)[-1]
    control, _data = state
    proto_spec = proto.spec
    assert control[proto_spec._control_slot("l1", (1, 1))] == VALID
    assert control[proto_spec._control_slot("l1", (2, 1))] == INV


def test_inclusion_invariant():
    """A valid L1 line implies a valid L2 line, in every reachable
    state."""
    proto = two_level_spec(p=2, b=1, v=1)
    spec = proto.spec

    def visit(state, _depth):
        control, _data = state
        for P in (1, 2):
            if control[spec._control_slot("l1", (P, 1))] == VALID:
                assert control[spec._control_slot("l2", (1,))] == VALID

    explore(proto, on_state=visit)


def test_no_stale_l1_reads():
    """After a store, no other processor can load the old value
    (exhaustively: every reachable load of a block returns the
    globally latest stored value — the hierarchy is coherent)."""
    proto = two_level_spec(p=2, b=1, v=2)
    # traces where some proc reads value A after value B was stored,
    # with A stored before B, would be non-SC per-location; covered by
    # the exhaustive SC check, so here spot-check the specific shape:
    run = (
        InternalAction("Fill2", (1,)),
        InternalAction("Fill1", (1, 1)),
        InternalAction("Fill1", (2, 1)),
        ST(1, 1, 1),
        InternalAction("Fill1", (2, 1)),  # P2 refills after invalidation
    )
    state = proto.run_states(run)[-1]
    loads = [
        t.action
        for t in proto.transitions(state)
        if isinstance(t.action, Load) and t.action.proc == 2
    ]
    assert loads == [LD(2, 1, 1)]


def test_multi_block_configuration():
    # bounded (the full b=2 product is large); no violation reachable
    # within the searched fragment
    res = verify_protocol(two_level_spec(p=2, b=2, v=1), max_states=25_000)
    assert res.counterexample is None
