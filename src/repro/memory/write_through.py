"""A write-through, write-update protocol (Dragon/Firefly style).

Stores write memory and *update* every valid cache copy in the same
atomic step — no invalidations, no dirty state.  Caches only ever hold
clean data, so eviction is silent and misses fill from memory.

A useful contrast case for tracking: one ST's value lands in up to
``p + 1`` locations in a single transition.  This uses the ST-with-
copies extension of :mod:`repro.core.protocol` (the copies read the
post-store snapshot, so ``cache(P,B) -> mem(B)`` and
``cache(P,B) -> cache(Q,B)`` all carry the freshly stored value), and
on the descriptor side the new ST node's ID-set immediately covers all
those locations via ``add-ID``.

Sequentially consistent (the update is atomic across all copies).

State: ``(mem, valid, cval)`` with ``valid`` a p·b bit-tuple.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..core.operations import BOTTOM, InternalAction
from ..core.protocol import FRESH, Tracking, Transition
from .base import LocationMap, MemoryProtocol, replace_at

__all__ = ["WriteThroughProtocol"]


class WriteThroughProtocol(MemoryProtocol):
    """Write-through + write-update caches (SC)."""

    def __init__(self, p: int = 2, b: int = 1, v: int = 2, *, allow_evict: bool = True):
        super().__init__(p, b, v)
        self.allow_evict = allow_evict
        self._locs = LocationMap()
        self._locs.add_group("mem", b)
        self._locs.add_group("cache", p * b)
        self.num_locations = self._locs.total

    def mem_loc(self, block: int) -> int:
        return self._locs.loc("mem", block - 1)

    def cache_loc(self, proc: int, block: int) -> int:
        return self._locs.loc("cache", (proc - 1) * self.b + (block - 1))

    def _idx(self, proc: int, block: int) -> int:
        return (proc - 1) * self.b + (block - 1)

    # ------------------------------------------------------------------
    def initial_state(self) -> Tuple:
        return (
            (BOTTOM,) * self.b,
            (False,) * (self.p * self.b),
            (BOTTOM,) * (self.p * self.b),
        )

    def may_load_bottom(self, state: Tuple, block: int) -> bool:
        mem, valid, cval = state
        if mem[block - 1] == BOTTOM:
            return True
        return any(
            valid[self._idx(P, block)] and cval[self._idx(P, block)] == BOTTOM
            for P in self.procs
        )

    # ------------------------------------------------------------------
    def transitions(self, state: Tuple) -> Iterable[Transition]:
        mem, valid, cval = state
        for P in self.procs:
            for B in self.blocks:
                i = self._idx(P, B)
                if valid[i]:
                    yield self.load(P, B, cval[i], state, self.cache_loc(P, B))
                # ST: own cache becomes valid with V; memory and every
                # other valid copy are updated atomically (fan-out
                # copies from the just-written cache location)
                for V in self.values:
                    nmem = replace_at(mem, B - 1, V)
                    nvalid = replace_at(valid, i, True)
                    ncval = replace_at(cval, i, V)
                    copies: Dict[int, int] = {self.mem_loc(B): self.cache_loc(P, B)}
                    for Q in self.procs:
                        if Q == P:
                            continue
                        j = self._idx(Q, B)
                        if valid[j]:
                            ncval = replace_at(ncval, j, V)
                            copies[self.cache_loc(Q, B)] = self.cache_loc(P, B)
                    yield Transition(
                        self.store(P, B, V, None, self.cache_loc(P, B)).action,
                        (nmem, nvalid, ncval),
                        Tracking(location=self.cache_loc(P, B), copies=copies),
                    )
                if self.allow_evict and valid[i]:
                    yield Transition(
                        InternalAction("Evict", (P, B)),
                        (mem, replace_at(valid, i, False), replace_at(cval, i, BOTTOM)),
                        Tracking(copies={self.cache_loc(P, B): FRESH}),
                    )
                if not valid[i]:
                    yield Transition(
                        InternalAction("Fill", (P, B)),
                        (mem, replace_at(valid, i, True), replace_at(cval, i, mem[B - 1])),
                        Tracking(copies={self.cache_loc(P, B): self.mem_loc(B)}),
                    )
