"""Serial (atomic) memory — the baseline protocol.

One storage location per block; every LD and ST acts on it
instantaneously.  Trivially sequentially consistent (its traces *are*
serial), with real-time ST order, no internal actions, and the
smallest possible state space: ``(v+1)^b`` states.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..core.operations import BOTTOM
from ..core.protocol import Transition
from .base import LocationMap, MemoryProtocol, replace_at

__all__ = ["SerialMemory"]


class SerialMemory(MemoryProtocol):
    """The paper's "serial memory": loads return the value of the most
    recent store, atomically, in real time.

    State: a tuple ``mem`` of length ``b`` with ``mem[B-1]`` the current
    value of block ``B`` (``BOTTOM`` initially).
    """

    def __init__(self, p: int = 2, b: int = 1, v: int = 2):
        super().__init__(p, b, v)
        self._locs = LocationMap()
        self._locs.add_group("mem", b)
        self.num_locations = self._locs.total

    def initial_state(self) -> Tuple[int, ...]:
        return (BOTTOM,) * self.b

    def may_load_bottom(self, state: Tuple[int, ...], block: int) -> bool:
        # the single memory location is the only readable copy; once
        # written it never reverts to ⊥
        return state[block - 1] == BOTTOM

    def transitions(self, state: Tuple[int, ...]) -> Iterable[Transition]:
        for proc in self.procs:
            for block in self.blocks:
                loc = self._locs.loc("mem", block - 1)
                # the only loadable value is the current one
                yield self.load(proc, block, state[block - 1], state, loc)
                for value in self.values:
                    yield self.store(
                        proc, block, value, replace_at(state, block - 1, value), loc
                    )
