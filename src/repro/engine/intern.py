"""State interning: canonical keys computed once, held as dense ints.

Profiling (DESIGN.md §5) showed ~40% of verification time in canonical
state-key construction, and the old search then *kept* those large
nested tuples everywhere — as seen-set members, parent-map keys and
successor-list entries — paying a full recursive tuple hash at every
membership test and insertion (Python tuples do not cache their hash).

:class:`StateStore` fixes both costs structurally: a key is hashed
exactly once, at :meth:`intern` time, and receives a dense integer ID
(its discovery index).  Everything downstream — visited set, frontier,
parent pointers, successor adjacency, the quiescence closure — works
with ints.  Counterexample runs are reconstructed from a
parent-pointer array (one parent ID + one action per state) instead of
an action list per frontier entry, which also cuts frontier memory.

The store is plain data (a few lists and a dict) so a paused search
pickles and resumes exactly (:mod:`repro.harness.checkpoint`), and a
parallel shard's store re-shards by replaying its key list.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["StateStore", "ShardStore"]

#: parent marker of a root (initial) state
NO_PARENT = -1


class StateStore:
    """Interns hashable state keys to dense integer IDs.

    IDs are allocated in discovery order starting at 0, so a BFS store
    doubles as the BFS numbering.  Parent pointers record the search
    tree: :meth:`set_parent` is called once per discovered state, and
    :meth:`path_to` walks the pointers back to a root to rebuild the
    action sequence that reached a state.
    """

    __slots__ = ("_ids", "_keys", "_parent", "_action")

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._keys: List[Hashable] = []
        self._parent: List[int] = []
        self._action: List[Optional[object]] = []

    # ------------------------------------------------------------------
    def intern(self, key: Hashable) -> Tuple[int, bool]:
        """Return ``(id, is_new)`` for ``key``, interning it if new."""
        sid = self._ids.get(key)
        if sid is not None:
            return sid, False
        sid = len(self._parent)
        self._ids[key] = sid
        self._keys.append(key)
        self._parent.append(NO_PARENT)
        self._action.append(None)
        return sid, True

    def set_parent(self, sid: int, parent: int, action: object) -> None:
        """Record that ``sid`` was discovered from ``parent`` via
        ``action`` (roots keep parent ``-1``)."""
        self._parent[sid] = parent
        self._action[sid] = action

    def path_to(self, sid: int) -> List[object]:
        """The action sequence from the root to state ``sid``,
        reconstructed from the parent-pointer array."""
        actions: List[object] = []
        while True:
            parent = self._parent[sid]
            if parent == NO_PARENT:
                break
            actions.append(self._action[sid])
            sid = parent
        actions.reverse()
        return actions

    def depth_of(self, sid: int) -> int:
        """Number of parent hops from ``sid`` back to its root."""
        d = 0
        while self._parent[sid] != NO_PARENT:
            sid = self._parent[sid]
            d += 1
        return d

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._ids

    def id_of(self, key: Hashable) -> Optional[int]:
        return self._ids.get(key)

    def key_of(self, sid: int) -> Hashable:
        """The interned key of ``sid`` (IDs are dense, discovery
        order).  The reverse direction of :meth:`intern` — the parallel
        engine re-shards stores through it, and the differential
        harness uses it to compare violating-state *keys* (IDs are
        discovery-order artifacts; keys are canonical)."""
        return self._keys[sid]

    def parent_of(self, sid: int) -> Tuple[int, Optional[object]]:
        """``(parent id, action)`` recorded for ``sid`` (parent is
        ``NO_PARENT`` for roots)."""
        return self._parent[sid], self._action[sid]


class ShardStore:
    """One shard's slice of the interned state space.

    The parallel engine's per-worker counterpart of
    :class:`StateStore`: local IDs are dense ints in shard discovery
    order, but parent pointers are *global* ``(shard, id)`` pairs —
    a state discovered from a cross-shard successor records the
    producing shard's parent, and counterexample reconstruction walks
    the pointers across shard stores
    (:meth:`repro.engine.parallel.ParallelSearchEngine.path_to`).

    Plain data, so a shard's whole exploration state pickles — both
    for the round-trip back to the coordinator when a search pauses
    and for checkpoint format v3.
    """

    __slots__ = ("_ids", "_keys", "_pshard", "_pid", "_action")

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._keys: List[Hashable] = []
        self._pshard: List[int] = []
        self._pid: List[int] = []
        self._action: List[Optional[object]] = []

    def intern(self, key: Hashable) -> Tuple[int, bool]:
        """Return ``(local id, is_new)`` for ``key``."""
        lid = self._ids.get(key)
        if lid is not None:
            return lid, False
        lid = len(self._keys)
        self._ids[key] = lid
        self._keys.append(key)
        self._pshard.append(NO_PARENT)
        self._pid.append(NO_PARENT)
        self._action.append(None)
        return lid, True

    def set_parent(self, lid: int, pshard: int, pid: int, action: object) -> None:
        """Record the global parent of ``lid`` (roots keep
        ``(NO_PARENT, NO_PARENT)``)."""
        self._pshard[lid] = pshard
        self._pid[lid] = pid
        self._action[lid] = action

    def parent_of(self, lid: int) -> Tuple[int, int, Optional[object]]:
        return self._pshard[lid], self._pid[lid], self._action[lid]

    def key_of(self, lid: int) -> Hashable:
        return self._keys[lid]

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._ids
