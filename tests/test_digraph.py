"""Unit tests for the Digraph container."""

from hypothesis import given

from repro.graphs import Digraph

from .conftest import digraph_strategy


def test_add_nodes_and_edges():
    g = Digraph()
    g.add_edge(1, 2, "a")
    g.add_edge(2, 3)
    assert len(g) == 3
    assert g.num_edges() == 2
    assert g.has_edge(1, 2)
    assert not g.has_edge(2, 1)
    assert g.label(1, 2) == "a"
    assert g.label(2, 3) is None
    assert set(g.successors(2)) == {3}
    assert set(g.predecessors(2)) == {1}


def test_add_edge_replaces_label():
    g = Digraph()
    g.add_edge(1, 2, "a")
    g.add_edge(1, 2, "b")
    assert g.label(1, 2) == "b"
    assert g.num_edges() == 1


def test_add_edge_merge_combines_labels():
    g = Digraph()
    g.add_edge(1, 2, {"a"})
    g.add_edge(1, 2, {"b"}, merge=lambda old, new: old | new)
    assert g.label(1, 2) == {"a", "b"}


def test_self_loop_supported():
    g = Digraph()
    g.add_edge(1, 1)
    assert g.has_edge(1, 1)
    assert 1 in set(g.successors(1))


def test_remove_edge_and_node():
    g = Digraph()
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    g.remove_edge(1, 2)
    assert not g.has_edge(1, 2)
    assert 2 in g
    g.remove_node(2)
    assert 2 not in g
    assert g.num_edges() == 0
    assert len(g) == 2


def test_contract_node_preserves_paths():
    g = Digraph()
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    g.add_edge(4, 2)
    g.contract_node(2)
    assert g.has_edge(1, 3)
    assert g.has_edge(4, 3)
    assert 2 not in g


def test_contract_node_creates_self_loop_for_two_cycle():
    g = Digraph()
    g.add_edge(1, 2)
    g.add_edge(2, 1)
    g.contract_node(2)
    assert g.has_edge(1, 1)


def test_contract_node_label_merge():
    g = Digraph()
    g.add_edge(1, 2, "in")
    g.add_edge(2, 3, "out")
    g.contract_node(2, label_merge=lambda a, b, existing: (a, b, existing))
    assert g.label(1, 3) == ("in", "out", None)


def test_reachability():
    g = Digraph()
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    g.add_edge(4, 1)
    assert g.reachable_from(1) == {2, 3}
    assert g.has_path(4, 3)
    assert not g.has_path(3, 1)
    assert not g.has_path(99, 1)


def test_copy_is_independent():
    g = Digraph()
    g.add_edge(1, 2)
    h = g.copy()
    h.add_edge(2, 3)
    assert not g.has_edge(2, 3)
    assert h.has_edge(1, 2)


@given(digraph_strategy())
def test_canonical_key_stable_under_copy(g):
    assert g.canonical_key() == g.copy().canonical_key()


@given(digraph_strategy())
def test_degree_consistency(g):
    for u in g.nodes():
        assert g.out_degree(u) == len(set(g.successors(u)))
        assert g.in_degree(u) == len(set(g.predecessors(u)))
    # every edge appears in both adjacency directions
    for (u, v) in g.edges():
        assert v in set(g.successors(u))
        assert u in set(g.predecessors(v))
