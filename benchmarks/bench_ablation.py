"""E-ablation — what each state-space reduction buys.

DESIGN.md calls out three implementation choices that keep the
verification product tractable; each is individually sound to disable,
so their cost is directly measurable:

* **canonical ID renaming** — joint states that agree up to a
  permutation of descriptor IDs are merged;
* **eager free-ID symbols** — checkers retire nodes the moment the
  observer knows no further edge can touch them, instead of at ID
  reuse (the paper's implicit retirement);
* **head unpinning** — each block's STo head is released once the
  protocol rules out further ⊥-loads (``may_load_bottom``).

The verdict never changes (asserted); only the joint-state count and
wall time do.
"""

from repro.memory import MSIProtocol, SerialMemory
from repro.modelcheck.product import explore_product
from repro.util import format_table

CONFIGS = [
    ("all reductions on", {}),
    ("no canonical ID renaming", {"canonical_ids": False}),
    ("no eager free-ID", {"eager_free": False}),
    ("no head unpinning", {"unpin_heads": False}),
    ("none (paper-naive)", {"canonical_ids": False, "eager_free": False, "unpin_heads": False}),
]


def _measure(proto, cap):
    rows = []
    base = None
    for name, kw in CONFIGS:
        res = explore_product(
            proto, mode="fast", max_states=cap,
            check_quiescence_reachability=False, **kw
        )
        assert res.ok, name
        n = res.stats.states
        if base is None:
            base = n
        rows.append(
            (
                name,
                f"{n}{'+' if res.stats.truncated else ''}",
                f"{n / base:.1f}x",
            )
        )
    return rows


def test_ablation_serial_memory(benchmark, show):
    proto = SerialMemory(p=2, b=1, v=2)
    rows = benchmark.pedantic(lambda: _measure(proto, 100_000), rounds=1, iterations=1)
    show(
        format_table(
            ["configuration", "joint states", "blow-up"],
            rows,
            title="Ablation, serial memory p2 b1 v2 (fast mode)",
        )
    )
    # each reduction matters on its own
    assert int(rows[1][1].rstrip("+")) > int(rows[0][1])
    assert int(rows[2][1].rstrip("+")) > int(rows[0][1])
    assert int(rows[3][1].rstrip("+")) > int(rows[0][1])


def test_ablation_msi(benchmark, show):
    proto = MSIProtocol(p=2, b=1, v=1)
    rows = benchmark.pedantic(lambda: _measure(proto, 15_000), rounds=1, iterations=1)
    show(
        format_table(
            ["configuration", "joint states", "blow-up"],
            rows,
            title="Ablation, MSI p2 b1 v1 (fast mode)",
        )
    )
    assert int(rows[-1][1].rstrip("+")) > int(rows[0][1])
