"""Differential testing of the search engines.

The parallel engine (:class:`~repro.engine.ParallelSearchEngine`) is
only trustworthy if it is *provably honest*: sharding a verification
across worker processes must change wall-clock time and nothing else.
This module captures a search outcome as a :class:`SearchFingerprint`
— a small, comparable summary of everything the engines promise to
agree on — and diffs fingerprints across engine configurations
(sequential vs. sharded, BFS vs. DFS vs. random-walk), producing a
minimized divergence report when they disagree.

What must agree, and when:

* **verdict** — always.  A protocol is (non-)SC regardless of how the
  state space was enumerated.
* **state / transition / quiescent counts** — whenever the search ran
  to completion (every verdict except a ``stop_on_violation`` halt,
  where the counts legitimately depend on when the first violation
  was *reached*, which is search-order dependent).  This is the
  canonical-key congruence property: a successor's canonical key is a
  function of its parent's canonical key and the action alone, so
  every enumeration order closes the same key set.
* **violation-key set and canonical violation** — in exhaustive mode
  (``stop_on_violation=False``): violating states are recorded, never
  expanded, and the reported one is the minimum by stable key hash,
  so all engines report the *same* violating state.
* **counterexample validity** — always, but not the *path*: parent
  pointers record each engine's arrival order, so two honest engines
  may return different runs to (even the same) violating state.  What
  the contract requires is that each run **replays to a genuine
  violation** (:func:`~repro.core.verify.check_run` rejects it).

Symmetry reduction (``--reduce``; :mod:`repro.engine.reduction`) adds
a second axis: two runs at the *same* level are held to the full
contract above (the quotient space is enumerated deterministically,
so counts agree across strategies and worker counts exactly as the
unreduced space does), while a reduced and an unreduced run are
compared **cross-level**: verdict, counterexample replay validity and
— in exhaustive mode — the canonically reported violating state must
agree, but the counts must *not* (shrinking them is the point of the
reduction) and the violation-key sets are incomparable (violating
states keep their concrete identity keys, and the quotient search
reaches one representative per orbit rather than every member).

Partial-order reduction (``--por``; :mod:`repro.engine.por`) adds its
own axis with a *weaker* cross-level contract than symmetry reduction:
an ample-set search explores a subset of the full state graph chosen
against the interning order (the C3 proviso asks "is this successor
already interned?"), so even two ``--por on`` runs with different
frontier strategies or worker counts may legitimately explore
different state counts.  What carries across POR configurations is
:data:`CROSS_POR_FIELDS` — the verdict and counterexample replay
validity; fixing (strategy, workers, seed) restores bit-exact
reproducibility, which same-config comparisons still enforce in full.

The consistency-model layer (:mod:`repro.models`) adds a third axis.
Fingerprints of *different models* are never field-compared — a causal
search legitimately reaches a different verdict through a different
state space — so :func:`compare_fingerprints` refuses the comparison
outright.  What holds across models is the **lattice contract**: if a
protocol verifies under a stronger model, it must verify under every
weaker one (every SC trace is causal, so an SC-pass forces a
causal-pass — the witness-edge embedding argument in
:mod:`repro.models.causal`).  :func:`assert_model_lattice` enforces
exactly that implication, plus replay validity of whichever
counterexample the weaker model found.  Bounded-preemption runs add a
refinement contract (:func:`assert_preemption_refinement`): a bounded
violation must replay as a full-search violation (the bound only
*removes* runs), and an exhaustive bounded search must explore
strictly fewer states than the exhaustive unbounded one.

``tests/test_differential.py`` drives this module over the protocol
zoo; :func:`assert_equivalent` is the assertion it uses, and the
report it prints on failure is this module's
:func:`divergence_report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .core.protocol import Protocol
from .core.storder import STOrderGenerator
from .core.verify import check_run
from .engine import ParallelSearchEngine
from .engine.sharding import stable_hash
from .modelcheck.product import ProductSearch
from .obs import MetricsRegistry, Telemetry, TraceWriter

#: the ``search.*`` gauges every honest engine configuration must agree
#: on for a completed search (peak_frontier and max_depth are excluded:
#: both legitimately vary with sharding — per-shard peaks sum, and round
#: quotas reorder the depth at which a state is first reached)
DETERMINISTIC_GAUGES = (
    "search.states",
    "search.transitions",
    "search.quiescent",
    "search.interned",
)

__all__ = [
    "DETERMINISTIC_GAUGES",
    "CROSS_POR_FIELDS",
    "CROSS_REDUCE_FIELDS",
    "SearchFingerprint",
    "fingerprint",
    "compare_fingerprints",
    "divergence_report",
    "assert_equivalent",
    "assert_model_lattice",
    "assert_preemption_refinement",
]


@dataclass(frozen=True)
class SearchFingerprint:
    """Everything two honest engines must agree on, plus provenance.

    ``violation_keys`` and ``canonical_violation`` hold
    :func:`~repro.engine.sharding.stable_hash` values of canonical
    state keys (the keys themselves contain unhashable-by-accident
    payloads in no engine, but hashes diff tersely).
    """

    # provenance (never compared — identifies the configuration;
    # ``reduce`` additionally *selects* the contract: fingerprints at
    # different reduction levels are compared cross-level, see
    # :func:`compare_fingerprints`)
    protocol: str
    mode: str
    strategy: str
    workers: int
    exhaustive: bool

    # the contract
    verdict: str  #: "verified" | "violation" | "inconclusive" | "stopped" | "truncated"
    states: int
    transitions: int
    quiescent: int
    non_quiescible: int
    violation_keys: frozenset
    canonical_violation: Optional[int]
    cx_len: Optional[int]
    cx_replays: Optional[bool]  #: None when no counterexample was produced
    #: symmetry-reduction level the search ran under (provenance, like
    #: ``workers`` — but unlike workers it changes which fields another
    #: configuration must reproduce)
    reduce: str = "off"
    #: consistency model the search checked (provenance; fingerprints
    #: of different models are never field-compared — the lattice
    #: contract :func:`assert_model_lattice` relates them instead)
    model: str = "sc"
    #: context-switch bound of a bounded-preemption SC search (``None``
    #: = unbounded; provenance, related to the unbounded run by
    #: :func:`assert_preemption_refinement`)
    preemptions: Optional[int] = None
    #: partial-order-reduction level the search ran under (provenance;
    #: like ``reduce`` it changes which fields another configuration
    #: must reproduce — see :data:`CROSS_POR_FIELDS`)
    por: str = "off"
    #: the :data:`DETERMINISTIC_GAUGES` subset of the run's telemetry
    #: snapshot, as sorted (name, value) pairs — proves the metrics
    #: pipeline reports the same search the engines agree on
    metrics: Tuple[Tuple[str, float], ...] = ()

    @property
    def label(self) -> str:
        bound = "" if self.preemptions is None else f" preemptions={self.preemptions}"
        return (
            f"{self.protocol} [model={self.model}{bound} mode={self.mode} "
            f"strategy={self.strategy} "
            f"workers={self.workers} reduce={self.reduce} por={self.por} "
            f"{'exhaustive' if self.exhaustive else 'stop-on-first'}]"
        )

    def provenance(self) -> Dict[str, object]:
        """The search-identity fields the run ledger hashes
        (:data:`repro.obs.ledger.PROVENANCE_FIELDS`): what was
        searched, excluding run policy such as ``workers`` — so a
        fingerprint keys straight into :meth:`RunLedger.lookup`."""
        return {
            "protocol": self.protocol,
            "mode": self.mode,
            "strategy": self.strategy,
            "exhaustive": self.exhaustive,
            "reduce": self.reduce,
            "model": self.model,
            "preemptions": self.preemptions,
            "por": self.por,
        }

    def comparable(self) -> Dict[str, object]:
        """The fields another engine configuration must reproduce.

        Counts are excluded for a stop-on-first-violation halt (they
        measure *when* the engine noticed, not what exists); the
        violation-key set and canonical violation are exhaustive-mode
        promises.  Counterexample *validity* is always in; its length
        never is.
        """
        fields: Dict[str, object] = {"verdict": self.verdict}
        if self.cx_replays is not None:
            fields["cx_replays"] = self.cx_replays
        if not (self.verdict == "violation" and not self.exhaustive):
            fields["states"] = self.states
            fields["transitions"] = self.transitions
            fields["quiescent"] = self.quiescent
            fields["non_quiescible"] = self.non_quiescible
            fields["metrics"] = self.metrics
        if self.exhaustive:
            fields["violation_keys"] = self.violation_keys
            fields["canonical_violation"] = self.canonical_violation
        return fields


def _verdict_of(result) -> str:
    if result.counterexample is not None:
        return "violation"
    if result.stats.stop_reason is not None:
        return "stopped"
    if result.stats.truncated:
        return "truncated"
    if result.non_quiescible:
        return "inconclusive"
    return "verified"


def fingerprint(
    protocol: Protocol,
    st_order: Optional[STOrderGenerator] = None,
    *,
    mode: str = "fast",
    strategy: str = "bfs",
    seed: int = 0,
    workers: int = 1,
    reduce: str = "off",
    model: str = "sc",
    preemptions: Optional[int] = None,
    por: str = "off",
    exhaustive: bool = True,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    worker_retries: int = 2,
    on_worker_failure: str = "reshard",
    round_timeout_s: Optional[float] = None,
    chaos=None,
    store=None,
) -> SearchFingerprint:
    """Run one product search and summarise it for comparison.

    Any counterexample is independently validated by replaying its run
    through a *fresh* observer + checker (:func:`check_run`) — the
    fingerprint records whether the replay genuinely rejects, so a
    fabricated or mis-reconstructed path cannot pass as honest.

    The search runs under full telemetry (registry + in-memory trace),
    so fingerprinting also exercises the observability layer and the
    fingerprint's ``metrics`` field captures the deterministic gauge
    subset — tracing a run must never change what it computes.

    ``chaos`` (with the other supervision knobs) arms deterministic
    engine faults for the run — deliberately **not** a provenance
    field on the fingerprint: the whole point of the chaos tests is
    that a faulted-and-recovered run must fingerprint identically to
    a clean one.

    ``store`` selects the state-store backend (``"mem"``/``"disk"``
    or a :class:`~repro.engine.intern.StoreConfig`) — likewise run
    policy and deliberately **not** a provenance field: the
    backend-invariance contract (docs/ARCHITECTURE.md) is that a
    spill-to-disk search fingerprints bit-identically to the
    all-in-RAM one, and the cross-backend difftest asserts exactly
    that.
    """
    search = ProductSearch(
        protocol,
        st_order,
        mode=mode,
        strategy=strategy,
        seed=seed,
        workers=workers,
        reduce=reduce,
        model=model,
        preemptions=preemptions,
        por=por,
        stop_on_violation=not exhaustive,
        max_states=max_states,
        max_depth=max_depth,
        worker_retries=worker_retries,
        on_worker_failure=on_worker_failure,
        round_timeout_s=round_timeout_s,
        chaos=chaos,
        store=store,
    )
    telemetry = Telemetry(registry=MetricsRegistry(), trace=TraceWriter([]))
    result = search.run(telemetry=telemetry)
    engine = search.engine
    gauges = telemetry.registry.snapshot().gauges
    metrics = tuple(
        (name, gauges[name]) for name in DETERMINISTIC_GAUGES if name in gauges
    )

    viol_hashes = frozenset(stable_hash(k) for k in engine.violation_keys())
    canonical: Optional[int] = None
    if exhaustive and viol_hashes:
        ref = engine._final.violating if engine._final is not None else None
        if ref is not None:
            if isinstance(engine, ParallelSearchEngine):
                shard, lid = ref
                canonical = stable_hash(engine.shards[shard].store.key_of(lid))
            else:
                canonical = stable_hash(engine.store.key_of(ref))

    cx_len: Optional[int] = None
    cx_replays: Optional[bool] = None
    if result.counterexample is not None:
        cx_len = len(result.counterexample.run)
        # replayed on the *unwrapped* protocol under the model's own
        # acceptance condition — for a bounded-preemption run this is
        # full SC, so replay validity IS the refinement promise: the
        # bounded counterexample is a genuine full-search violation
        cx_replays = not check_run(
            protocol, result.counterexample.run, st_order, model=model
        ).ok

    return SearchFingerprint(
        protocol=protocol.describe(),
        mode=mode,
        strategy=strategy,
        workers=workers,
        reduce=reduce,
        model=model,
        preemptions=preemptions,
        por=por,
        exhaustive=exhaustive,
        verdict=_verdict_of(result),
        states=result.stats.states,
        transitions=result.stats.transitions,
        quiescent=result.stats.quiescent_states,
        non_quiescible=result.non_quiescible,
        violation_keys=viol_hashes,
        canonical_violation=canonical,
        cx_len=cx_len,
        cx_replays=cx_replays,
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------

#: one divergence: (field, baseline value, other value)
Divergence = Tuple[str, object, object]


#: the cross-level contract: all a reduced and an unreduced run of the
#: same protocol promise each other.  Counts are out (the quotient is
#: smaller by design), the violation-key *set* is out (the quotient
#: search reaches one concrete representative per violating orbit, not
#: every member) — but the verdict, the canonically reported violating
#: state and counterexample replay validity carry across levels.
CROSS_REDUCE_FIELDS = frozenset(
    {"verdict", "cx_replays", "canonical_violation"}
)

#: the cross-POR contract: what two runs at different POR levels — or
#: two ``--por on`` runs under different frontier strategies / worker
#: counts — promise each other.  Strictly weaker than
#: :data:`CROSS_REDUCE_FIELDS`: counts are out (the ample search is
#: smaller by design), and so is the canonical violation — ample sets
#: defer *invisible* actions, so the reduced search may first reject
#: in a state whose protocol component differs from any the full
#: search flags (same observer evidence, different concrete key).
#: What survives any sound POR configuration is the verdict and the
#: replay validity of whatever counterexample it produced.
CROSS_POR_FIELDS = frozenset({"verdict", "cx_replays"})


def compare_fingerprints(
    base: SearchFingerprint, other: SearchFingerprint
) -> List[Divergence]:
    """Fields on which ``other`` breaks the contract against ``base``.

    Only fields *both* configurations promise (the intersection of
    their :meth:`~SearchFingerprint.comparable` sets) are diffed — a
    stop-on-first run is not held to an exhaustive run's counts.
    Fingerprints taken at different symmetry-reduction levels are
    further restricted to :data:`CROSS_REDUCE_FIELDS`: a quotient
    search must reach the same verdict through the same canonical
    violation, while exploring *fewer* states — so its counts are
    required to differ, not to agree.  Fingerprints taken at different
    POR levels — or both at ``--por on`` but under different frontier
    strategies or worker counts, where the C3 proviso's dependence on
    interning order makes the explored subset configuration-specific —
    are restricted to :data:`CROSS_POR_FIELDS`.
    """
    if base.model != other.model or base.preemptions != other.preemptions:
        raise ValueError(
            f"fingerprints check different conditions "
            f"({base.label} vs {other.label}); different models are "
            f"related by assert_model_lattice, bounded and unbounded "
            f"runs by assert_preemption_refinement — neither is a "
            f"field-equality contract"
        )
    a, b = base.comparable(), other.comparable()
    names = set(a) & set(b)
    if base.reduce != other.reduce:
        names &= CROSS_REDUCE_FIELDS
    if base.por != other.por or (
        base.por != "off"
        and (base.strategy, base.workers) != (other.strategy, other.workers)
    ):
        names &= CROSS_POR_FIELDS
    return [(name, a[name], b[name]) for name in sorted(names) if a[name] != b[name]]


def _show(field: str, av, bv) -> str:
    if field == "violation_keys":
        only_a = sorted(av - bv)[:5]
        only_b = sorted(bv - av)[:5]
        return (
            f"  violation_keys: {len(av)} vs {len(bv)} keys; "
            f"only-baseline {only_a}{'...' if len(av - bv) > 5 else ''}, "
            f"only-other {only_b}{'...' if len(bv - av) > 5 else ''}"
        )
    return f"  {field}: {av!r} vs {bv!r}"


def divergence_report(
    base: SearchFingerprint, others: Sequence[SearchFingerprint]
) -> str:
    """A minimized human-readable report: only the configurations that
    diverge, and only the fields on which they do."""
    lines = [f"baseline: {base.label}"]
    clean = True
    for fp in others:
        diffs = compare_fingerprints(base, fp)
        if not diffs:
            continue
        clean = False
        lines.append(f"DIVERGES: {fp.label}")
        lines.extend(_show(field, av, bv) for field, av, bv in diffs)
    if clean:
        lines.append("all configurations agree")
    return "\n".join(lines)


def assert_equivalent(
    base: SearchFingerprint, others: Sequence[SearchFingerprint]
) -> None:
    """Raise :class:`AssertionError` carrying the divergence report if
    any configuration disagrees with the baseline."""
    if any(compare_fingerprints(base, fp) for fp in others):
        raise AssertionError(
            "engine configurations diverged\n" + divergence_report(base, others)
        )


# ----------------------------------------------------------------------
# cross-model contracts
# ----------------------------------------------------------------------


def assert_model_lattice(
    stronger: SearchFingerprint, weaker: SearchFingerprint
) -> None:
    """Enforce the model-lattice implication between two fingerprints
    of the *same protocol* under a stronger and a strictly weaker
    consistency model (e.g. SC and causal).

    The contract (both directions of one implication):

    * ``stronger`` verified ⇒ ``weaker`` verified — every trace the
      stronger model accepts, the weaker accepts too, so no run of a
      stronger-verified protocol can violate the weaker model;
    * contrapositively, a ``weaker`` violation ⇒ a ``stronger``
      violation — and the weaker model's counterexample must replay
      (``cx_replays``), so the evidence is concrete, not an artifact
      of its observer.

    Nothing else is promised: state counts, violation keys and even
    the violation/verified split in the *other* direction (a
    stronger-model violation with a weaker-model pass is the
    interesting separation case — e.g. the store buffer under SC vs
    causal) legitimately differ.
    """
    if stronger.protocol != weaker.protocol:
        raise ValueError(
            f"lattice contract needs one protocol, got "
            f"{stronger.protocol!r} vs {weaker.protocol!r}"
        )
    if stronger.model == weaker.model:
        raise ValueError(
            "lattice contract relates two different models; same-model "
            "fingerprints are compared with assert_equivalent"
        )
    if stronger.verdict == "verified" and weaker.verdict != "verified":
        raise AssertionError(
            f"model lattice broken: {stronger.label} verified but "
            f"{weaker.label} reports {weaker.verdict} — a "
            f"{weaker.model} violation on a {stronger.model}-verified "
            f"protocol is impossible if {weaker.model} is weaker"
        )
    if weaker.verdict == "violation" and stronger.verdict != "violation":
        raise AssertionError(
            f"model lattice broken: {weaker.label} found a violation "
            f"but {stronger.label} reports {stronger.verdict}"
        )
    if weaker.cx_replays is False:
        raise AssertionError(
            f"{weaker.label}: counterexample does not replay as a "
            f"{weaker.model} violation"
        )


def assert_preemption_refinement(
    bounded: SearchFingerprint, full: SearchFingerprint
) -> None:
    """Enforce the under-approximation contract between a bounded-
    preemption fingerprint and the unbounded fingerprint of the same
    protocol.

    * a bounded **violation is real**: it must replay as a violation
      under full SC on the unwrapped protocol (``cx_replays`` — the
      fingerprint replays exactly that way), and the unbounded search
      must, of course, also report a violation;
    * a bounded **pass proves nothing** — no implication is checked in
      that direction;
    * on exhaustive runs the bound must **pay for itself**: strictly
      fewer explored states than the unbounded exhaustive search
      (pruning runs can only shrink the reachable joint space; the
      wrapper's context bookkeeping splits states, which is why the
      claim holds for exhaustive counts, not stop-on-first ones).
    """
    if bounded.protocol != full.protocol:
        raise ValueError(
            f"refinement contract needs one protocol, got "
            f"{bounded.protocol!r} vs {full.protocol!r}"
        )
    if bounded.preemptions is None or full.preemptions is not None:
        raise ValueError(
            "refinement contract relates a bounded fingerprint "
            "(preemptions=K) to an unbounded one (preemptions=None)"
        )
    if bounded.verdict == "violation":
        if bounded.cx_replays is False:
            raise AssertionError(
                f"{bounded.label}: bounded counterexample does not "
                f"replay as a full-search violation"
            )
        if full.verdict != "violation":
            raise AssertionError(
                f"refinement broken: {bounded.label} found a violation "
                f"but {full.label} reports {full.verdict} — the bound "
                f"only removes runs, so every bounded violation exists "
                f"unbounded"
            )
    if bounded.exhaustive and full.exhaustive and not (
        bounded.states < full.states
    ):
        raise AssertionError(
            f"preemption bound did not pay for itself: "
            f"{bounded.states} bounded states vs {full.states} "
            f"unbounded ({bounded.label})"
        )
