"""E-baseline — streaming per-run checking vs the exponential VSC
baselines (the Section 5 testing scenario).

Series: time to decide SC of one protocol run, as a function of trace
length, for (a) the paper's streaming observer+checker (linear), and
(b) the brute-force interleaving search and (c) the store-order
enumeration, both exponential.  The shape to observe: the streaming
method stays flat while the baselines blow up — they stop being
feasible around 15–20 operations, which is exactly why the paper's
finite-state formulation matters.
"""

import random
import time

from repro.core.operations import trace_of_run
from repro.core.protocol import random_run
from repro.core.verify import check_run
from repro.litmus import check_trace_bruteforce, check_trace_store_orders
from repro.memory import MSIProtocol
from repro.util import format_table

PROTO = MSIProtocol(p=2, b=2, v=2)


def _runs_by_trace_length(lengths, seed=5):
    """One quiescent-ended run per requested trace length."""
    rng = random.Random(seed)
    out = {}
    attempts = 0
    while len(out) < len(lengths) and attempts < 4000:
        attempts += 1
        run = random_run(PROTO, rng.randint(4, max(lengths) * 3), rng, end_quiescent=True)
        n = len(trace_of_run(run))
        for want in lengths:
            if n == want and want not in out:
                out[want] = run
    return out


def test_streaming_vs_baselines(benchmark, show):
    lengths = [4, 6, 8, 10, 12]
    runs = _runs_by_trace_length(lengths)

    def stream_all():
        return [check_run(PROTO, runs[n]).ok for n in sorted(runs)]

    verdicts = benchmark(stream_all)
    assert all(verdicts)  # MSI runs always check out

    rows = []
    for n in sorted(runs):
        run = runs[n]
        trace = trace_of_run(run)

        t0 = time.perf_counter()
        sv = check_run(PROTO, run).ok
        t_stream = time.perf_counter() - t0

        t0 = time.perf_counter()
        bv = check_trace_bruteforce(trace)
        t_brute = time.perf_counter() - t0

        t0 = time.perf_counter()
        ov = check_trace_store_orders(trace)
        t_orders = time.perf_counter() - t0

        assert sv == bv == ov is True
        rows.append(
            (
                n,
                len(run),
                f"{t_stream * 1e3:.2f} ms",
                f"{t_brute * 1e3:.2f} ms",
                f"{t_orders * 1e3:.2f} ms",
            )
        )
    show(
        format_table(
            ["trace ops", "run actions", "streaming (paper)", "interleaving search", "store-order search"],
            rows,
            title="Per-run SC checking: streaming vs exponential baselines (MSI runs)",
        )
    )


def test_streaming_scales_to_long_runs(benchmark, show):
    """The streaming checker handles runs far beyond the baselines'
    reach; time grows linearly."""
    rng = random.Random(9)
    long_runs = {n: random_run(PROTO, n, rng, end_quiescent=True) for n in (200, 400, 800)}

    def check_longest():
        return check_run(PROTO, long_runs[800]).ok

    assert benchmark(check_longest)

    rows = []
    for n, run in long_runs.items():
        t0 = time.perf_counter()
        ok = check_run(PROTO, run).ok
        dt = time.perf_counter() - t0
        assert ok
        rows.append((n, len(trace_of_run(run)), f"{dt * 1e3:.1f} ms"))
    show(
        format_table(
            ["run actions", "trace ops", "streaming check time"],
            rows,
            title="Streaming checker on long runs (baselines are infeasible here)",
        )
    )
