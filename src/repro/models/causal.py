"""Causal consistency as a :class:`ConsistencyModel`.

The model (as implemented here, in the paper's witness-graph frame):
a trace is accepted iff the graph over its LD/ST events with

* **per-location program order** — successive operations by the same
  processor *on the same block* (``po`` edges), and
* **write-read causality** — the ST whose value a LD observes
  precedes it (``inh`` edges, from the protocol's tracking labels)

is acyclic and every inheritance agrees on block and value.  There is
deliberately **no total ST order per block** and no cross-location
program order — the two ingredients whose absence separates causal
from sequential consistency.  Every edge here maps to an edge or path
of the SC witness graph (per-location program order embeds into full
program order; the inheritance edges are literally shared), so an
acyclic SC witness implies an acyclic causal witness: **SC-pass ⇒
causal-pass**, the lattice contract :mod:`repro.difftest` enforces
over the protocol zoo.  The store-buffer protocol separates the two
models concretely: its SB-litmus behaviour has no same-location
program-order pair to order the offending operations, so it verifies
under ``--model causal`` while violating SC.

:class:`CausalObserver` is the streaming emitter: per (processor,
block) it remembers the last event node, and the location map tracks
which ST's value each storage location holds (the same Section 4.1
tracking-label machinery the SC observer uses).  Nodes retire as soon
as they are neither a per-(proc, block) tail nor held by any location
— no future edge can touch them — so the live set is bounded by
``L + p·b`` and the joint model-checking space stays finite.  The
independent per-trace oracle is
:func:`repro.litmus.bruteforce.check_trace_causal`, fuzzed against
this observer in ``tests/test_models.py``.

Like the SC observer, a rejection means *this observer is not a
causal witness* for the trace; with correct tracking labels that is a
genuine causality violation (a value observed before it is causally
produced), which is exactly what the cycle checker detects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.constraint_graph import EdgeKind
from ..core.descriptor import EdgeSym, FreeIdSym, NodeSym, Symbol
from ..core.operations import BOTTOM, InternalAction, Load, Operation, Store
from ..core.protocol import FRESH, Protocol, Transition
from ..core.storder import STOrderGenerator
from .base import ConsistencyModel

__all__ = ["CausalConsistency", "CausalObserver"]

Handle = int


class CausalObserver:
    """Streaming witness-graph emitter for the causal condition.

    The same driving contract as :class:`~repro.core.observer.Observer`
    (``on_transition`` per protocol step, ``fork`` for branching,
    canonical snapshots for state interning), with a much smaller
    state: a location map and one last-node handle per (processor,
    block).
    """

    __slots__ = (
        "protocol",
        "self_check",
        "eager_free",
        "violation",
        "_next_handle",
        "_op",
        "_id",
        "_free_ids",
        "_ids_allocated",
        "_loc",
        "_last",
        "max_live",
        "_canon_cache",
        "_key_cache",
    )

    def __init__(
        self,
        protocol: Protocol,
        st_order: Optional[STOrderGenerator] = None,
        *,
        self_check: bool = False,
        eager_free: bool = True,
        unpin_heads: bool = True,
    ):
        # st_order / unpin_heads are accepted for observer-interface
        # uniformity and ignored: causal has no ST total order, hence
        # no generator, no block heads and no forced edges
        del st_order, unpin_heads
        self.protocol = protocol
        self.self_check = self_check
        self.eager_free = eager_free
        self.violation: Optional[str] = None
        self._next_handle = 1
        self._op: Dict[Handle, Operation] = {}
        self._id: Dict[Handle, int] = {}
        self._free_ids: List[int] = []
        self._ids_allocated = 0
        L = protocol.num_locations
        self._loc: Dict[int, Optional[Handle]] = {l: None for l in range(1, L + 1)}
        #: (proc, block) -> last LD/ST node of that processor on that
        #: block (the per-location program-order tail)
        self._last: Dict[Tuple[int, int], Handle] = {}
        self.max_live = 0
        self._canon_cache: Optional[Dict[int, int]] = None
        self._key_cache: Optional[Tuple] = None

    # ------------------------------------------------------------------
    def _alloc_id(self) -> int:
        if self._free_ids:
            import heapq

            return heapq.heappop(self._free_ids)
        self._ids_allocated += 1
        return self._ids_allocated

    @property
    def ids_in_use(self) -> int:
        return len(self._id)

    @property
    def max_ids_allocated(self) -> int:
        return self._ids_allocated

    def _new_node(self, op: Operation, out: List[Symbol]) -> Handle:
        h = self._next_handle
        self._next_handle += 1
        ident = self._alloc_id()
        self._op[h] = op
        self._id[h] = ident
        out.append(NodeSym(ident, op))
        return h

    # ------------------------------------------------------------------
    def on_transition(self, transition: Transition) -> List[Symbol]:
        self._canon_cache = None
        self._key_cache = None
        out: List[Symbol] = []
        edges: Dict[Tuple[int, int], EdgeKind] = {}
        action = transition.action
        tracking = transition.tracking

        def edge(u: Handle, v: Handle, kind: EdgeKind) -> None:
            key = (self._id[u], self._id[v])
            edges[key] = edges.get(key, EdgeKind.NONE) | kind

        if isinstance(action, (Store, Load)):
            h = self._new_node(action, out)
            prev = self._last.get((action.proc, action.block))
            if prev is not None:
                edge(prev, h, EdgeKind.PO)
            self._last[(action.proc, action.block)] = h
            l = tracking.location
            if l is None:
                kind = "ST" if isinstance(action, Store) else "LD"
                raise ValueError(
                    f"{kind} transition without a location label: {action!r}"
                )
            if isinstance(action, Store):
                self._loc[l] = h
                if tracking.copies:
                    snapshot = dict(self._loc)
                    for dst, src_l in tracking.copies.items():
                        self._loc[dst] = None if src_l == FRESH else snapshot[src_l]
            else:
                src = self._loc[l]
                if self.self_check and self.violation is None:
                    if src is None:
                        if action.value != BOTTOM:
                            self.violation = (
                                f"{action!r} returns a value, but location "
                                f"{l} holds no ST's value (⊥)"
                            )
                    else:
                        sop = self._op[src]
                        if sop.block != action.block or sop.value != action.value:
                            self.violation = (
                                f"{action!r} reads location {l}, which holds "
                                f"the value of {sop!r}"
                            )
                        elif action.value == BOTTOM:
                            self.violation = (
                                f"{action!r} is a ⊥-load of a tracked ST value"
                            )
                if src is not None:
                    edge(src, h, EdgeKind.INH)
                # a ⊥-load inherits the initial contents, which precede
                # everything: no edge, no obligation
        else:
            assert isinstance(action, InternalAction)
            if tracking.copies:
                snapshot = dict(self._loc)
                for l, src_l in tracking.copies.items():
                    self._loc[l] = None if src_l == FRESH else snapshot[src_l]

        out.extend(EdgeSym(u, v, kind) for (u, v), kind in edges.items())
        self._collect_garbage(out)
        live = len(self._id)
        if live > self.max_live:
            self.max_live = live
        return out

    # ------------------------------------------------------------------
    def _collect_garbage(self, out: List[Symbol]) -> None:
        """Retire nodes that are neither a per-(proc, block) tail nor
        held by a location: program-order edges only ever leave tails
        and inheritance edges only ever leave held nodes, so a retired
        node can gain no future edge."""
        roots = set(self._last.values())
        for h in self._loc.values():
            if h is not None:
                roots.add(h)
        _id = self._id
        if len(roots) >= len(_id):
            return
        import heapq

        for h in [h for h in _id if h not in roots]:
            ident = _id.pop(h)
            heapq.heappush(self._free_ids, ident)
            if self.eager_free:
                out.append(FreeIdSym(ident))
            self._op.pop(h, None)

    # ------------------------------------------------------------------
    def fork(self) -> "CausalObserver":
        other = CausalObserver.__new__(CausalObserver)
        other.protocol = self.protocol
        other.self_check = self.self_check
        other.eager_free = self.eager_free
        other.violation = self.violation
        other._next_handle = self._next_handle
        other._op = dict(self._op)
        other._id = dict(self._id)
        other._free_ids = list(self._free_ids)
        other._ids_allocated = self._ids_allocated
        other._loc = dict(self._loc)
        other._last = dict(self._last)
        other.max_live = self.max_live
        other._canon_cache = self._canon_cache
        other._key_cache = self._key_cache
        return other

    # ------------------------------------------------------------------
    def _fused_canonical(self) -> None:
        """Canonical renaming + state key in one walk (locations in
        index order, then per-(proc, block) tails in sort order —
        every live node fills one of those roles, so the walk names
        all IDs)."""
        _id = self._id
        canon: Dict[int, int] = {}
        name = canon.setdefault
        loc_part_l = []
        loc_data_l = []
        for l in sorted(self._loc):
            h = self._loc[l]
            if h is None:
                loc_part_l.append(None)
                if self.self_check:
                    loc_data_l.append(None)
            else:
                loc_part_l.append(name(_id[h], len(canon)))
                if self.self_check:
                    op = self._op[h]
                    loc_data_l.append((op.block, op.value))
        last_part = tuple(
            (k, name(_id[h], len(canon))) for k, h in sorted(self._last.items())
        )
        if len(canon) != len(_id):  # pragma: no cover - safety net
            for h in sorted(_id):
                name(_id[h], len(canon))
        self._key_cache = (
            self.violation,
            tuple(loc_data_l),
            tuple(loc_part_l),
            last_part,
        )
        self._canon_cache = canon

    def canonical_snapshot(self) -> Tuple[Dict[int, int], Tuple]:
        if self._key_cache is None:
            self._fused_canonical()
        assert self._canon_cache is not None and self._key_cache is not None
        return self._canon_cache, self._key_cache

    def canonical_renaming(self) -> Dict[int, int]:
        return self.canonical_snapshot()[0]

    def state_key(self, canon: Optional[Dict[int, int]] = None) -> Tuple:
        if canon is None or canon is self._canon_cache:
            return self.canonical_snapshot()[1]

        def rn(h: Optional[Handle]):
            return None if h is None else canon[self._id[h]]

        loc_data: Tuple = ()
        if self.self_check:
            loc_data = tuple(
                (
                    None
                    if self._loc[l] is None
                    else (self._op[self._loc[l]].block, self._op[self._loc[l]].value)
                )
                for l in sorted(self._loc)
            )
        return (
            self.violation,
            loc_data,
            tuple(rn(self._loc[l]) for l in sorted(self._loc)),
            tuple(sorted((k, rn(h)) for k, h in self._last.items())),
        )


class CausalConsistency(ConsistencyModel):
    """Per-location program order + write-read causality, no total
    store order.  Strictly weaker than SC (see module docstring)."""

    name = "causal"
    modes = ("fast",)
    weaker_than = ("sc",)
    supports_reduction = False

    def make_observer(
        self,
        protocol: Protocol,
        st_order: Optional[STOrderGenerator] = None,
        *,
        self_check: bool = False,
        eager_free: bool = True,
        unpin_heads: bool = True,
    ) -> CausalObserver:
        return CausalObserver(
            protocol,
            st_order,
            self_check=self_check,
            eager_free=eager_free,
            unpin_heads=unpin_heads,
        )

    def make_checker(self, mode: str):
        self.check_mode(mode)
        from ..core.cycle_checker import CycleChecker

        return CycleChecker()
