"""The Dragon protocol — write-update with dirty sharing.

Xerox Dragon keeps every cached copy *current* by broadcasting each
write to all sharers (no invalidations at all) and tracks a single
owner responsible for the dirty data:

states per (processor, block):
  I  invalid
  Sc shared clean  — current value, someone else owns writeback duty
  Sm shared modified — current value, *this* cache owns writeback duty
  E  exclusive clean
  M  exclusive modified

* ``ReadMiss(P,B)`` — another valid copy supplies the data (a dirty
  owner downgrades M→Sm, a clean exclusive E→Sc); with no copies the
  line fills from memory into E.
* ``ST(P,B,V)`` — requires a valid line; the new value is broadcast to
  every other valid copy in the same atomic step (write-update: the
  post-store ``copies`` fan-out); the writer becomes the owner
  (Sm with sharers, M alone) and any previous owner downgrades to Sc.
* ``Evict(P,B)`` — owners (Sm/M) write back; Sc/E drop silently
  (their value matches memory or the surviving owner by the update
  invariant).

Sequentially consistent: updates are atomic, so all valid copies agree
at all times — the protocol's defining invariant, asserted reachably
in the tests.  Like MOESI, memory can be stale while an owner exists;
unlike MOESI, *sharers are never invalidated*.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..core.operations import BOTTOM, InternalAction
from ..core.protocol import FRESH, Tracking, Transition
from .base import LocationMap, MemoryProtocol, replace_at

__all__ = ["DragonProtocol", "I", "SC_", "SM", "E", "M"]

I, SC_, SM, E, M = 0, 1, 2, 3, 4
_OWNER_STATES = (SM, M)
_VALID = (SC_, SM, E, M)


class DragonProtocol(MemoryProtocol):
    """Write-update (Dragon) coherence — SC."""

    def __init__(self, p: int = 2, b: int = 1, v: int = 2, *, allow_evict: bool = True):
        super().__init__(p, b, v)
        self.allow_evict = allow_evict
        self._locs = LocationMap()
        self._locs.add_group("mem", b)
        self._locs.add_group("cache", p * b)
        self.num_locations = self._locs.total

    def mem_loc(self, block: int) -> int:
        return self._locs.loc("mem", block - 1)

    def cache_loc(self, proc: int, block: int) -> int:
        return self._locs.loc("cache", (proc - 1) * self.b + (block - 1))

    def _idx(self, proc: int, block: int) -> int:
        return (proc - 1) * self.b + (block - 1)

    # ------------------------------------------------------------------
    def initial_state(self) -> Tuple:
        return (
            (BOTTOM,) * self.b,
            (I,) * (self.p * self.b),
            (BOTTOM,) * (self.p * self.b),
        )

    def may_load_bottom(self, state: Tuple, block: int) -> bool:
        mem, cstate, cval = state
        holders = [P for P in self.procs if cstate[self._idx(P, block)] != I]
        if any(cval[self._idx(P, block)] == BOTTOM for P in holders):
            return True
        return not holders and mem[block - 1] == BOTTOM

    # ------------------------------------------------------------------
    def _holders(self, cstate: Tuple, block: int):
        return [Q for Q in self.procs if cstate[self._idx(Q, block)] != I]

    def _supplier(self, cstate: Tuple, block: int) -> Optional[int]:
        """Who answers a read miss: the owner if any, else any holder."""
        holders = self._holders(cstate, block)
        for Q in holders:
            if cstate[self._idx(Q, block)] in _OWNER_STATES:
                return Q
        return holders[0] if holders else None

    def transitions(self, state: Tuple) -> Iterable[Transition]:
        mem, cstate, cval = state
        for P in self.procs:
            for B in self.blocks:
                i = self._idx(P, B)
                st = cstate[i]
                if st != I:
                    yield self.load(P, B, cval[i], state, self.cache_loc(P, B))
                    for V in self.values:
                        yield self._store(state, P, B, V)
                else:
                    yield self._read_miss(state, P, B)
                if self.allow_evict and st != I:
                    yield self._evict(state, P, B)

    # ------------------------------------------------------------------
    def _store(self, state: Tuple, P: int, B: int, V: int) -> Transition:
        mem, cstate, cval = state
        i = self._idx(P, B)
        others = [Q for Q in self._holders(cstate, B) if Q != P]
        ncval = replace_at(cval, i, V)
        ncstate = cstate
        copies: Dict[int, int] = {}
        # broadcast the new value to every other valid copy
        for Q in others:
            j = self._idx(Q, B)
            ncval = replace_at(ncval, j, V)
            copies[self.cache_loc(Q, B)] = self.cache_loc(P, B)
            # the previous owner hands over ownership
            if ncstate[j] in _OWNER_STATES:
                ncstate = replace_at(ncstate, j, SC_)
            elif ncstate[j] == E:
                ncstate = replace_at(ncstate, j, SC_)
        ncstate = replace_at(ncstate, i, SM if others else M)
        return Transition(
            self.store(P, B, V, None, self.cache_loc(P, B)).action,
            (mem, ncstate, ncval),
            Tracking(location=self.cache_loc(P, B), copies=copies),
        )

    def _read_miss(self, state: Tuple, P: int, B: int) -> Transition:
        mem, cstate, cval = state
        i = self._idx(P, B)
        supplier = self._supplier(cstate, B)
        copies: Dict[int, int] = {}
        if supplier is not None:
            j = self._idx(supplier, B)
            copies[self.cache_loc(P, B)] = self.cache_loc(supplier, B)
            data = cval[j]
            # dirty owner downgrades M -> Sm; clean exclusive E -> Sc
            if cstate[j] == M:
                cstate = replace_at(cstate, j, SM)
            elif cstate[j] == E:
                cstate = replace_at(cstate, j, SC_)
            grant = SC_
        else:
            copies[self.cache_loc(P, B)] = self.mem_loc(B)
            data = mem[B - 1]
            grant = E
        cstate = replace_at(cstate, i, grant)
        cval = replace_at(cval, i, data)
        return Transition(
            InternalAction("ReadMiss", (P, B)), (mem, cstate, cval), Tracking(copies=copies)
        )

    def _evict(self, state: Tuple, P: int, B: int) -> Transition:
        mem, cstate, cval = state
        i = self._idx(P, B)
        copies: Dict[int, int] = {self.cache_loc(P, B): FRESH}
        if cstate[i] in _OWNER_STATES:
            mem = replace_at(mem, B - 1, cval[i])
            copies[self.mem_loc(B)] = self.cache_loc(P, B)
            # writeback duty passes to... nobody: remaining sharers are
            # clean (their value equals the freshly written-back memory)
        cstate = replace_at(cstate, i, I)
        cval = replace_at(cval, i, BOTTOM)
        return Transition(
            InternalAction("Evict", (P, B)), (mem, cstate, cval), Tracking(copies=copies)
        )
