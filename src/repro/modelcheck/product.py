"""Product exploration: protocol × observer × checker.

This is the model-checking step of Figure 2: a search over joint
states ``(protocol state, observer state, checker state)``.  The
observer emits descriptor symbols for each protocol transition; the
checker consumes them.  The search reports the first reachable
violation — either an eager safety rejection (a cycle, a malformed
edge) or an end-of-string failure at a *quiescent* protocol state —
as a :class:`~repro.modelcheck.counterexample.Counterexample`.

End checks only at quiescent states are justified by prefix closure:
the constraint graph of any run prefix embeds into the graph of a
quiescent extension (every added STo/forced edge is implied by a path
there), so acyclicity and validity at quiescent states imply a serial
reordering for every prefix trace.  For this to cover all behaviour,
quiescence must be reachable from every state — which
:func:`explore_product` verifies on the explored graph.

Since the unified-engine refactor this module is a thin adapter: the
composition lives in :class:`repro.engine.ComposedSystem`, and the
search itself — interned state store, frontier strategy, caps, the
cooperative ``should_stop`` hook, checkpointable pause state — in
:class:`repro.engine.SearchEngine`.  :class:`ProductSearch` keeps its
historical surface: a resumable object whose ``run`` can be halted by
a budget hook (:mod:`repro.harness.budget`) mid-frontier, pickled
(:mod:`repro.harness.checkpoint`) and continued exactly where it
stopped.  :func:`explore_product` remains the one-shot functional
entry point.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.checker import Checker
from ..core.operations import Action
from ..core.protocol import Protocol
from ..core.storder import STOrderGenerator
from ..engine import ComposedSystem, ParallelSearchEngine, SearchEngine
from ..engine.intern import as_config
from ..engine.strategy import StopHook
from ..obs.stats import ExplorationStats
from .counterexample import Counterexample

__all__ = ["ProductResult", "ProductSearch", "explore_product"]

#: reusable no-op context for un-instrumented spans
_NULL_CTX = contextlib.nullcontext()


@dataclass
class ProductResult:
    """Outcome of a product exploration."""

    ok: bool
    counterexample: Optional[Counterexample]
    stats: ExplorationStats
    #: joint states from which no quiescent state is reachable (empty
    #: when verification is complete); non-empty makes ``ok`` False
    #: unless the protocol genuinely never quiesces from there
    non_quiescible: int = 0

    @property
    def verdict(self) -> str:
        if self.ok:
            return "VERIFIED (bounded)" if self.stats.truncated else "VERIFIED"
        if self.counterexample is not None:
            return "VIOLATION"
        return "INCOMPLETE"


def _replay(
    protocol: Protocol,
    st_order: Optional[STOrderGenerator],
    actions: List[Action],
    model=None,
) -> Tuple[Tuple, str]:
    """Re-execute a run to recover the emitted symbols and the first
    checker violation message, judged under ``model`` (default SC,
    with the strongest checker the model supports)."""
    if model is None:
        from ..models.sc import SequentialConsistency

        model = SequentialConsistency()
    observer = model.make_observer(protocol, st_order, self_check=True)
    checker = model.make_checker("full" if "full" in model.modes else "fast")
    state = protocol.initial_state()
    symbols = []
    for action in actions:
        for t in protocol.transitions(state):
            if t.action == action:
                break
        else:  # pragma: no cover - internal invariant
            raise AssertionError("counterexample replay diverged")
        symbols.extend(observer.on_transition(t))
        state = t.state
    checker.feed_all(symbols)
    if isinstance(checker, Checker):
        violations = checker.violations()
    else:
        violations = [] if checker.accepts else ["constraint-graph cycle"]
    if observer.violation is not None:
        violations.insert(0, observer.violation)
    reason = violations[0] if violations else "checker rejected"
    return tuple(symbols), reason


class ProductSearch:
    """Resumable search over the verification product.

    Construct, then call :meth:`run` — repeatedly, if a ``should_stop``
    hook halts it.  Between calls the underlying engine holds the full
    frontier, interned-state store and parent pointers, so it can be
    pickled to disk and resumed in another process (all state is plain
    data; only protocols whose ST-order generator captures a lambda
    resist pickling).

    ``st_order`` is a *template* generator — it is copied for the
    initial observer (``None`` = real-time ST order).  Caps make the
    result a bounded (testing-grade) verdict rather than a proof.
    ``strategy`` picks the frontier policy (``"bfs"`` — the default,
    and the only one that yields shortest counterexamples — ``"dfs"``
    or ``"random-walk"``; see :mod:`repro.engine.strategy`).

    ``workers > 1`` runs the same search sharded across that many
    worker processes (:class:`repro.engine.ParallelSearchEngine`) —
    verdicts and state counts are identical to the sequential engine
    (the differential suite enforces it); ``stop_on_violation=False``
    selects the exhaustive discipline both engines share, where every
    violating state is recorded and the canonical one reported.

    ``mode`` selects the checking depth:

    * ``"full"`` — the literal Figure 2 pipeline: the complete
      protocol-independent checker (cycle + all five edge-annotation
      constraints) rides along in the product.  Exactly the paper, but
      the checker's window state multiplies the joint state space.
    * ``"fast"`` — exploits Theorem 4.1: the observer's output
      satisfies the structural constraints (2, 3, 5 and the edge shape
      of 4) *by construction* (a property the test suite verifies
      against the full checker on both exhaustive and random runs), so
      only the protocol-dependent checks ride along: acyclicity
      (CycleChecker) and value/block agreement of inheritance
      (observer self-check).  Same verdicts, far fewer joint states.
    """

    def __init__(
        self,
        protocol: Protocol,
        st_order: Optional[STOrderGenerator] = None,
        *,
        mode: str = "full",
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        check_quiescence_reachability: bool = True,
        canonical_ids: bool = True,
        eager_free: bool = True,
        unpin_heads: bool = True,
        strategy: str = "bfs",
        seed: int = 0,
        workers: int = 1,
        stop_on_violation: bool = True,
        reduce: str = "off",
        model: str = "sc",
        preemptions: Optional[int] = None,
        por: str = "off",
        worker_retries: int = 2,
        on_worker_failure: str = "reshard",
        round_timeout_s: Optional[float] = None,
        chaos=None,
        store=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.protocol = protocol
        self.st_order = st_order
        self.mode = mode
        self.max_states = max_states
        self.max_depth = max_depth
        self.canonical_ids = canonical_ids
        self.workers = workers
        self.reduce = reduce
        self.por = por
        self.strategy = strategy
        self.stop_on_violation = stop_on_violation
        # run policy, like workers/supervision: which backend interns
        # the state keys — never search provenance
        self.store_config = as_config(store)
        self.system = ComposedSystem(
            protocol,
            st_order,
            mode=mode,
            canonical_ids=canonical_ids,
            eager_free=eager_free,
            unpin_heads=unpin_heads,
            reduce=reduce,
            model=model,
            preemptions=preemptions,
            por=por,
        )
        self.model = self.system.model
        self.model_name = self.model.name
        self.preemptions = preemptions
        if self.model.bounded:
            # budget-exhausted states whose drain needs another context
            # cannot reach quiescence; the side condition would flag
            # every such state, so it is meaningless under a bound
            check_quiescence_reachability = False
        self.check_quiescence_reachability = check_quiescence_reachability
        if workers > 1:
            self.engine = ParallelSearchEngine(
                self.system,
                workers=workers,
                strategy=strategy,
                seed=seed,
                max_states=max_states,
                max_depth=max_depth,
                stop_on_violation=stop_on_violation,
                track_successors=True,
                check_quiescence_reachability=check_quiescence_reachability,
                worker_retries=worker_retries,
                on_worker_failure=on_worker_failure,
                round_timeout_s=round_timeout_s,
                chaos=chaos,
                store=self.store_config,
            )
        else:
            self.engine = SearchEngine(
                self.system,
                strategy=strategy,
                seed=seed,
                max_states=max_states,
                max_depth=max_depth,
                strict_cap=False,
                stop_on_violation=stop_on_violation,
                track_successors=True,
                check_quiescence_reachability=check_quiescence_reachability,
                store=self.store_config,
            )
        self.stats = self.engine.stats

    def __setstate__(self, state):
        # pre-reduction checkpoints pickled a ProductSearch without a
        # reduce attribute (no CHECKPOINT_VERSION bump); they load as
        # the "off" level, which is what they were.  Pre-model-layer
        # checkpoints likewise load as unbounded SC.
        state.setdefault("reduce", "off")
        state.setdefault("model", None)
        state.setdefault("model_name", "sc")
        state.setdefault("preemptions", None)
        # pre-POR checkpoints load as --por off
        state.setdefault("por", "off")
        # pre-ledger checkpoints did not record the frontier policy or
        # the stop discipline; default to the CLI defaults they ran with
        state.setdefault("strategy", "bfs")
        state.setdefault("stop_on_violation", True)
        # pre-backend checkpoints interned in plain dicts: mem policy
        state.setdefault("store_config", as_config(None))
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """The search reached a final verdict (no further ``run``
        changes it)."""
        return self.engine.done

    def shard_stats(self) -> Optional[List[ExplorationStats]]:
        """Per-shard exploration counters (parallel engine only;
        ``None`` for a sequential search)."""
        if isinstance(self.engine, ParallelSearchEngine):
            return list(self.engine.shard_stats)
        return None

    def _record_reduction(self, telemetry) -> None:
        """Publish ``reduction.*`` gauges for this run, if reducing.

        Counters are accumulated on the :class:`Reduction` object
        inside whichever process canonicalizes — under ``workers > 1``
        the workers' copies are fork()ed and their counters stay in
        the worker processes, so the gauges cover the reporting
        process only (see docs/OBSERVABILITY.md)."""
        red = self.system.reduction
        if telemetry is not None and red is not None:
            telemetry.record_reduction(red)

    def _record_por(self, telemetry) -> None:
        """Publish ``por.*`` gauges for this run, if reducing.  Same
        process-locality caveat as :meth:`_record_reduction`: under
        ``workers > 1`` the selectors' counters accrue in the worker
        processes, so the coordinator-side gauges cover the reporting
        process only."""
        sel = getattr(self.system, "por_selector", None)
        if telemetry is not None and sel is not None:
            telemetry.record_por(sel)

    def _record_store(self, telemetry) -> None:
        """Publish ``store.*`` gauges for this run.

        Sequential searches report the engine's one store; parallel
        searches aggregate across the coordinator-side shard payloads
        (backend counters ride the worker→coordinator pickles, so
        unlike :meth:`_record_reduction` they *do* cover worker
        activity)."""
        if telemetry is None:
            return
        if isinstance(self.engine, ParallelSearchEngine):
            per_shard = [p.store.store_stats() for p in self.engine.shards]
            telemetry.record_store(per_shard, sharded=True)
        else:
            telemetry.record_store([self.engine.store.store_stats()])

    def _build_cx(self, ref) -> Counterexample:
        """``ref`` is a violating-state reference: an interned ID for
        the sequential engine, a global ``(shard, id)`` pair for the
        parallel one — both walk parent pointers back to the root."""
        if isinstance(ref, tuple):
            actions = self.engine.path_to(ref)
        else:
            actions = self.engine.store.path_to(ref)
        symbols, reason = _replay(
            self.protocol, self.st_order, actions, getattr(self, "model", None)
        )
        return Counterexample(tuple(actions), symbols, reason)

    def reshard(self, workers: int) -> None:
        """Re-distribute a paused *parallel* search over a different
        worker count (checkpoint resumed with a new ``--workers``).
        Raises :class:`ValueError` for a sequential search — a v2
        checkpoint cannot be resumed in parallel."""
        if not isinstance(self.engine, ParallelSearchEngine):
            raise ValueError(
                "this search was started with the sequential engine "
                "(workers=1); it can only be resumed with workers=1"
            )
        self.engine = self.engine.reshard(workers)
        self.workers = workers
        self.stats = self.engine.stats

    def run(
        self, should_stop: Optional[StopHook] = None, telemetry=None
    ) -> ProductResult:
        """Continue the search until a verdict or a cooperative stop.

        Returns the final :class:`ProductResult` when the state space
        is exhausted (or a violation / cap ends the search); when
        ``should_stop`` halts it, the result is a *partial* one —
        ``ok`` so far, ``stats.truncated`` with ``stats.stop_reason``
        set — and the search stays resumable.

        ``telemetry`` (a :class:`repro.obs.Telemetry`, optional) is
        threaded into the engine — heartbeats/round events while
        searching, a ``violation_found`` trace event and the final
        search gauges here.  It is *not* stored on the search object,
        so checkpoints never capture telemetry handles.
        """
        with (telemetry.span("phase.search") if telemetry is not None
              else _NULL_CTX):
            out = self.engine.run(should_stop, telemetry)
        if out.status == "violation":
            assert out.violating is not None
            with (telemetry.span("phase.replay") if telemetry is not None
                  else _NULL_CTX):
                cx = self._build_cx(out.violating)
            if telemetry is not None:
                telemetry.record_search(out.stats, self.shard_stats())
                self._record_reduction(telemetry)
                self._record_por(telemetry)
                self._record_store(telemetry)
                telemetry.emit(
                    "violation_found",
                    states=out.stats.states,
                    reason=cx.reason,
                    cx_len=len(cx.run),
                    violations=len(out.violations),
                )
            return ProductResult(False, cx, out.stats)
        if telemetry is not None:
            telemetry.record_search(out.stats, self.shard_stats())
            self._record_reduction(telemetry)
            self._record_por(telemetry)
            self._record_store(telemetry)
        if out.status == "stopped":
            return ProductResult(True, None, out.stats)
        return ProductResult(
            out.non_quiescible == 0, None, out.stats, out.non_quiescible
        )


def explore_product(
    protocol: Protocol,
    st_order: Optional[STOrderGenerator] = None,
    *,
    mode: str = "full",
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    check_quiescence_reachability: bool = True,
    canonical_ids: bool = True,
    eager_free: bool = True,
    unpin_heads: bool = True,
    strategy: str = "bfs",
    seed: int = 0,
    workers: int = 1,
    stop_on_violation: bool = True,
    reduce: str = "off",
    model: str = "sc",
    preemptions: Optional[int] = None,
    por: str = "off",
    worker_retries: int = 2,
    on_worker_failure: str = "reshard",
    round_timeout_s: Optional[float] = None,
    chaos=None,
    store=None,
    should_stop: Optional[StopHook] = None,
    telemetry=None,
) -> ProductResult:
    """Run the verification search in one shot (see
    :class:`ProductSearch` for the knobs and resumable form).
    ``workers > 1`` shards the search across that many worker
    processes (:class:`repro.engine.ParallelSearchEngine`); verdicts
    and state counts are identical to ``workers=1``.  ``telemetry``
    (a :class:`repro.obs.Telemetry`) turns on traces/metrics/progress
    for this run."""
    search = ProductSearch(
        protocol,
        st_order,
        mode=mode,
        max_states=max_states,
        max_depth=max_depth,
        check_quiescence_reachability=check_quiescence_reachability,
        canonical_ids=canonical_ids,
        eager_free=eager_free,
        unpin_heads=unpin_heads,
        strategy=strategy,
        seed=seed,
        workers=workers,
        stop_on_violation=stop_on_violation,
        reduce=reduce,
        model=model,
        preemptions=preemptions,
        por=por,
        worker_retries=worker_retries,
        on_worker_failure=on_worker_failure,
        round_timeout_s=round_timeout_s,
        chaos=chaos,
        store=store,
    )
    return search.run(should_stop, telemetry)
