"""The Section 5 testing scenario: streaming per-run checking and
randomised campaigns, cross-checked against the brute-force oracle."""

from repro.core.operations import ST, LD, InternalAction
from repro.core.verify import check_run
from repro.litmus import check_run_streaming, fuzz_protocol
from repro.memory import (
    BuggyMSIProtocol,
    LazyCachingProtocol,
    MSIProtocol,
    SerialMemory,
    StoreBufferProtocol,
    lazy_caching_st_order,
    store_buffer_st_order,
)


def test_streaming_check_accepts_good_run():
    proto = MSIProtocol(p=2, b=1, v=1)
    run = (
        InternalAction("AcquireM", (1, 1)),
        ST(1, 1, 1),
        InternalAction("AcquireS", (2, 1)),
        LD(2, 1, 1),
    )
    res = check_run_streaming(proto, run)
    assert res.ok and res.quiescent_end
    assert "consistent" in res.verdict


def test_streaming_check_flags_sb_violation():
    proto = StoreBufferProtocol(p=2, b=2, v=1)
    run = (
        ST(1, 1, 1),
        LD(1, 2, 0),
        ST(2, 2, 1),
        LD(2, 1, 0),
        InternalAction("flush", (1,)),
        InternalAction("flush", (2,)),
    )
    res = check_run_streaming(proto, run, store_buffer_st_order())
    assert not res.ok
    assert "cycle" in (res.reason or "")


def test_streaming_check_rejects_non_run():
    proto = SerialMemory(p=1, b=1, v=1)
    try:
        check_run(proto, (LD(1, 1, 1),))
    except ValueError as e:
        assert "not enabled" in str(e)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")


def test_non_quiescent_end_is_partial_verdict():
    proto = StoreBufferProtocol(p=2, b=1, v=1)
    res = check_run(proto, (ST(1, 1, 1),), store_buffer_st_order())
    assert res.ok and not res.quiescent_end
    assert "partial" in res.verdict


def test_fuzz_msi_clean_with_cross_check():
    report = fuzz_protocol(
        MSIProtocol(p=2, b=2, v=2),
        runs=40,
        length=18,
        seed=3,
        cross_check_max_ops=8,
    )
    assert report.ok, report.summary()
    assert report.cross_checked > 0
    assert "0 violations" in report.summary()


def test_fuzz_lazy_caching_clean():
    report = fuzz_protocol(
        LazyCachingProtocol(p=2, b=2, v=1),
        runs=40,
        length=20,
        seed=5,
        st_order=lazy_caching_st_order(),
        cross_check_max_ops=8,
    )
    assert report.ok, report.summary()


def test_fuzz_store_buffer_finds_violations():
    report = fuzz_protocol(
        StoreBufferProtocol(p=2, b=2, v=1),
        runs=200,
        length=10,
        seed=11,
        st_order=store_buffer_st_order(),
        cross_check_max_ops=0,
    )
    assert report.violations, "random testing should stumble on SB violations"


def test_fuzz_buggy_msi_finds_violations():
    report = fuzz_protocol(
        BuggyMSIProtocol(p=2, b=1, v=1),
        runs=200,
        length=12,
        seed=13,
    )
    assert report.violations


def test_fuzz_cross_check_soundness_on_store_buffer(rng):
    # soundness: whenever the streaming check accepts, the trace must
    # genuinely be SC.  (Conservative rejections are expected on a
    # non-SC protocol: the flush-order generator pins a store order
    # that may be the "wrong" witness for an individually-SC trace.)
    report = fuzz_protocol(
        StoreBufferProtocol(p=2, b=2, v=1),
        runs=80,
        length=8,
        seed=17,
        st_order=store_buffer_st_order(),
        cross_check_max_ops=10,
    )
    assert not report.unsound_accepts, report.unsound_accepts[:1]
    assert report.conservative_rejections, "expected some on a non-SC protocol"


def test_fuzz_cross_check_exact_on_sc_protocols():
    # on SC protocols the streaming verdict should simply be "ok" and
    # the oracle must agree — no disagreement in either direction
    for proto, gen in [
        (MSIProtocol(p=2, b=2, v=1), None),
        (LazyCachingProtocol(p=2, b=1, v=1), lazy_caching_st_order()),
    ]:
        report = fuzz_protocol(
            proto, runs=30, length=14, seed=23, st_order=gen, cross_check_max_ops=8
        )
        assert report.ok
        assert not report.conservative_rejections
