"""Topological orderings of :class:`~repro.graphs.digraph.Digraph`.

Lemma 3.1's converse direction says *any* topological order of an
acyclic constraint graph is a serial reordering of the underlying
trace; :func:`topological_sort` produces one, and
:func:`all_topological_sorts` enumerates every serial reordering of a
small trace (used by the brute-force oracle in tests).
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterator, List, Optional

from .digraph import Digraph

__all__ = ["topological_sort", "all_topological_sorts", "CycleError"]


class CycleError(ValueError):
    """Raised when a topological order is requested of a cyclic graph."""


def topological_sort(g: Digraph, *, prefer_small: bool = True) -> List[Hashable]:
    """Kahn's algorithm.

    With ``prefer_small`` (the default) ties are broken by a min-heap on
    the node values, which makes the output deterministic and — for the
    integer-numbered constraint graphs — biased toward the original
    trace order, giving more readable serial witnesses.

    Raises :class:`CycleError` if the graph has a cycle.
    """
    indeg = {u: g.in_degree(u) for u in g.nodes()}
    ready = [u for u, d in indeg.items() if d == 0]
    if prefer_small:
        try:
            heapq.heapify(ready)
        except TypeError:  # unsortable node mix — fall back to FIFO
            prefer_small = False
    order: List[Hashable] = []
    while ready:
        u = heapq.heappop(ready) if prefer_small else ready.pop()
        order.append(u)
        for v in g.successors(u):
            indeg[v] -= 1
            if indeg[v] == 0:
                if prefer_small:
                    heapq.heappush(ready, v)
                else:
                    ready.append(v)
    if len(order) != len(g):
        raise CycleError("graph has a cycle; no topological order exists")
    return order


def all_topological_sorts(g: Digraph) -> Iterator[List[Hashable]]:
    """Yield every topological order of ``g`` (exponential; test-sized
    graphs only).  Yields nothing if the graph is cyclic."""
    indeg = {u: g.in_degree(u) for u in g.nodes()}
    order: List[Hashable] = []
    n = len(indeg)

    def rec() -> Iterator[List[Hashable]]:
        if len(order) == n:
            yield list(order)
            return
        for u in [u for u, d in indeg.items() if d == 0 and u not in taken]:
            taken.add(u)
            order.append(u)
            for v in g.successors(u):
                indeg[v] -= 1
            yield from rec()
            for v in g.successors(u):
                indeg[v] += 1
            order.pop()
            taken.discard(u)

    taken: set = set()
    yield from rec()


def first_topological_sort_or_none(g: Digraph) -> Optional[List[Hashable]]:
    """Convenience wrapper returning ``None`` instead of raising."""
    try:
        return topological_sort(g)
    except CycleError:
        return None
