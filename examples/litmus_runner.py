#!/usr/bin/env python3
"""Litmus tests across memory models and protocols (Figure 1 and
friends).

Prints (a) the Figure 1 outcome table under serial memory at the
figure's schedule, SC, TSO and the fully relaxed model; (b) the
classification of every corpus program's outcomes; (c) which outcomes
concrete protocols actually produce — MSI matches SC exactly, the
store-buffer protocol matches TSO.

Run:  python examples/litmus_runner.py
"""

from repro.litmus import (
    CORPUS,
    FIGURE1,
    SB,
    classify_outcomes,
    outcomes_on_protocol,
    outcomes_sc,
    outcomes_serial_realtime,
    outcomes_tso,
)
from repro.memory import MSIProtocol, StoreBufferProtocol
from repro.util import print_table


def fmt(outcome) -> str:
    return " ".join(f"{r}={v}" for r, v in outcome)


def figure1_table() -> None:
    sched = [(1, 0), (1, 1), (2, 0), (2, 1)]
    serial = outcomes_serial_realtime(FIGURE1, sched)
    sc = outcomes_sc(FIGURE1)
    tso = outcomes_tso(FIGURE1)
    tags = classify_outcomes(FIGURE1)
    rows = []
    for outcome in sorted(tags):
        rows.append(
            (
                fmt(outcome),
                "✓" if outcome in serial else "",
                "✓" if outcome in sc else "",
                "✓" if outcome in tso else "",
                "✓",  # relaxed allows everything enumerated
            )
        )
    print_table(
        ["outcome", "serial@fig1 schedule", "SC", "TSO", "relaxed"],
        rows,
        title="Figure 1: allowed outcomes by memory model",
    )


def corpus_table() -> None:
    rows = []
    for prog in CORPUS:
        tags = classify_outcomes(prog)
        sc = sum(1 for t in tags.values() if t == "SC")
        tso = sum(1 for t in tags.values() if t == "TSO")
        rel = sum(1 for t in tags.values() if t == "relaxed")
        rows.append((prog.name, prog.description, sc, tso, rel))
    print_table(
        ["test", "shape", "#SC", "#TSO-only", "#relaxed-only"],
        rows,
        title="\nLitmus corpus: outcome counts by strongest allowing model",
    )


def protocols_table() -> None:
    msi = MSIProtocol(p=2, b=2, v=1)
    sb_proto = StoreBufferProtocol(p=2, b=2, v=1)
    rows = []
    for prog in (SB,):
        sc = outcomes_sc(prog)
        tso = outcomes_tso(prog)
        on_msi = outcomes_on_protocol(msi, prog)
        on_sb = outcomes_on_protocol(sb_proto, prog)
        for outcome in sorted(tso):
            rows.append(
                (
                    prog.name,
                    fmt(outcome),
                    "✓" if outcome in sc else "✗",
                    "✓" if outcome in on_msi else "✗",
                    "✓" if outcome in on_sb else "✗",
                )
            )
    print_table(
        ["test", "outcome", "SC allows", "MSI produces", "store-buffer produces"],
        rows,
        title="\nProtocols under the SB litmus (MSI ≡ SC; store buffer ≡ TSO)",
    )


if __name__ == "__main__":
    figure1_table()
    corpus_table()
    protocols_table()
