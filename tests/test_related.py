"""The related-methods package: Lamport clocks, TMC, and bounded
reordering — each reproducing one Section 1.1 comparison."""


import pytest

from repro.core.operations import LD, ST, InternalAction, trace_of_run
from repro.core.protocol import random_run
from repro.memory import (
    BuggyMSIProtocol,
    LazyCachingProtocol,
    MSIProtocol,
    SerialMemory,
    StoreBufferProtocol,
    lazy_caching_st_order,
    store_buffer_st_order,
)
from repro.related import (
    CausalWriteTest,
    CoherenceTest,
    ReadYourWritesTest,
    assign_clocks,
    minimum_k,
    run_tmc,
    serial_order_from_clocks,
    verify_bounded_reordering,
)
from repro.related.lamport_clocks import ClockChecker
from repro.core.serial import is_serial_reordering


# ----------------------------------------------------------------------
# Lamport clocks
# ----------------------------------------------------------------------
def test_clock_assignment_on_good_run():
    proto = MSIProtocol(p=2, b=1, v=1)
    run = (
        InternalAction("AcquireM", (1, 1)),
        ST(1, 1, 1),
        LD(1, 1, 1),
        InternalAction("AcquireS", (2, 1)),
        LD(2, 1, 1),
    )
    a = assign_clocks(proto, run)
    assert a.ok
    # clocks respect the witness edges: the ST precedes every load
    assert a.clocks[1] < a.clocks[2] and a.clocks[1] < a.clocks[3]
    order = serial_order_from_clocks(a)
    assert is_serial_reordering(trace_of_run(run), order)


def test_clock_assignment_fails_on_violation():
    proto = StoreBufferProtocol(p=2, b=2, v=1)
    run = (
        ST(1, 1, 1),
        LD(1, 2, 0),
        ST(2, 2, 1),
        LD(2, 1, 0),
        InternalAction("flush", (1,)),
        InternalAction("flush", (2,)),
    )
    a = assign_clocks(proto, run, store_buffer_st_order())
    assert not a.ok and "cycle" in a.reason


def test_clock_order_is_serial_on_random_runs(rng):
    proto = MSIProtocol(p=2, b=2, v=2)
    for _ in range(10):
        run = random_run(proto, rng.randint(1, 20), rng)
        a = assign_clocks(proto, run)
        assert a.ok
        order = serial_order_from_clocks(a)
        assert is_serial_reordering(trace_of_run(run), order)


def test_clock_table_grows_without_bound(rng):
    """The paper's contrast: logical clocks are unbounded; the
    observer's window is not."""
    proto = SerialMemory(p=2, b=1, v=2)
    chk = ClockChecker(proto)
    state = proto.initial_state()
    sizes = []
    for i in range(60):
        options = list(proto.transitions(state))
        t = options[rng.randrange(len(options))]
        chk.feed_action(t.action)
        state = t.state
        sizes.append(chk.table_size)
    assert sizes[-1] > sizes[10] > 0  # strictly growing with the run
    a = chk.clocks()
    assert a.ok
    assert a.max_clock >= 10  # clock values unbounded too


# ----------------------------------------------------------------------
# Test model checking
# ----------------------------------------------------------------------
def test_coherence_test_semantics():
    t = CoherenceTest()
    assert t.passes((ST(1, 1, 1), LD(2, 1, 1)))
    # per-location new-then-old is incoherent
    assert not t.passes((ST(1, 1, 1), LD(2, 1, 1), LD(2, 1, 0)))
    # the SB shape is per-location coherent (the test cannot see it)
    assert t.passes((ST(1, 1, 1), LD(1, 2, 0), ST(2, 2, 1), LD(2, 1, 0)))


def test_read_your_writes_semantics():
    t = ReadYourWritesTest()
    assert t.passes((ST(1, 1, 1), LD(1, 1, 1)))
    assert not t.passes((ST(1, 1, 1), LD(1, 1, 0)))
    assert t.passes((ST(1, 1, 1), LD(2, 1, 0)))  # other processor may lag


def test_causal_write_semantics():
    t = CausalWriteTest()
    # P1 observes x=1, writes y=1; P2 observes y=1 then x=⊥: causality broken
    bad = (ST(1, 1, 1), LD(2, 1, 1), ST(2, 2, 1), LD(1, 2, 1), LD(1, 1, 0))
    assert not t.passes(bad)
    ok = (ST(1, 1, 1), LD(2, 1, 1), ST(2, 2, 1), LD(1, 2, 1), LD(1, 1, 1))
    assert t.passes(ok)


@pytest.mark.parametrize(
    "proto,gen_depth",
    [
        (SerialMemory(p=2, b=2, v=1), 5),
        (MSIProtocol(p=2, b=2, v=1), 5),
        (LazyCachingProtocol(p=2, b=2, v=1), 5),
    ],
    ids=["serial", "msi", "lazy"],
)
def test_tmc_passes_on_sc_protocols(proto, gen_depth):
    report = run_tmc(proto, exhaustive_depth=gen_depth, random_runs=30, random_length=15)
    assert report.all_passed, report.summary()


def test_tmc_gap_store_buffer_passes_all_tests_but_is_not_sc():
    """The Section 1.1 point about TMC: test combinations approximate
    SC.  The TSO store buffer passes the whole battery yet is not SC
    (the constraint-graph method rejects it)."""
    proto = StoreBufferProtocol(p=2, b=2, v=1)
    report = run_tmc(proto, exhaustive_depth=5, random_runs=50, random_length=12)
    assert report.all_passed, report.summary()
    from repro.core.verify import verify_protocol

    assert not verify_protocol(proto, store_buffer_st_order()).sequentially_consistent


def test_tmc_catches_buggy_msi():
    """Per-location incoherence *is* within TMC's reach: the missing
    invalidation breaks the coherence test."""
    report = run_tmc(BuggyMSIProtocol(p=2, b=1, v=1), exhaustive_depth=6)
    assert not report.passed(CoherenceTest.name)


# ----------------------------------------------------------------------
# bounded reordering (Henzinger et al.)
# ----------------------------------------------------------------------
def test_serial_memory_needs_no_reordering():
    res = verify_bounded_reordering(SerialMemory(p=2, b=1, v=1), 0)
    assert res.ok and res.k == 0


def test_atomic_protocols_need_no_reordering():
    for proto in (MSIProtocol(p=2, b=1, v=1),):
        res = verify_bounded_reordering(proto, 0)
        assert res.ok, res.verdict


def test_store_buffer_fails_at_every_k():
    """A non-SC protocol has no witness at any k."""
    proto = StoreBufferProtocol(p=2, b=2, v=1)
    assert minimum_k(proto, k_max=3) is None


def test_lazy_caching_not_k_bounded():
    """The paper's headline comparison: lazy caching's reordering
    distance is unbounded — stale reads pile up behind a store
    arbitrarily long — so the bounded-buffer method fails for every k,
    while the constraint-graph observer verifies the protocol."""
    proto = LazyCachingProtocol(p=2, b=1, v=1)
    assert minimum_k(proto, k_max=4) is None
    from repro.core.verify import verify_protocol

    assert verify_protocol(
        LazyCachingProtocol(p=2, b=1, v=1), lazy_caching_st_order()
    ).sequentially_consistent


def test_bounded_reordering_reports_reason():
    res = verify_bounded_reordering(LazyCachingProtocol(p=2, b=1, v=1), 1)
    assert not res.ok
    assert res.reason


def test_bounded_search_cap():
    res = verify_bounded_reordering(MSIProtocol(p=2, b=2, v=2), 1, max_states=10)
    assert res.ok and res.reason and "cap" in res.reason
