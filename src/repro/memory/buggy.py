"""Intentionally broken MSI variants — the checker's regression prey.

Each variant flips exactly one of the protocol's correctness knobs and
is **empirically non-SC**: verification finds a concrete
counterexample at the variant's default configuration, and the
catch-rate regression (``tests/test_differential.py``) asserts every
variant is flagged under every worker count, so the parallel engine's
catch rate provably matches the sequential engine's.

:class:`BuggyMSIProtocol` — ``AcquireM`` forgets to invalidate other
processors' valid copies.  The classic coherence bug: two simultaneous
owners, stale copies surviving writes, stale data flowing back into
memory over a fresher value.  A strikingly small counterexample exists
already at ``p=2, b=1, v=1``::

    AcquireM(P1); AcquireM(P2)   # P1 not invalidated: two owners
    ST(P1,B1,1); Evict(P1)       # memory := 1
    AcquireS(P1)                 # P2 (stale owner, ⊥) supplies data!
    LD(P1,B1,⊥)

The trace ``ST(P1,B1,1), LD(P1,B1,⊥)`` has no serial reordering —
program order forces the LD after the ST, which forces it to return 1.

:class:`BuggyMSINoWritebackProtocol` — ``Evict`` silently drops a
modified line instead of writing it back.  The write is lost; at
``p=2, b=1, v=1`` the owner itself observes it::

    AcquireM(P1); ST(P1,B1,1)
    Evict(P1)                    # modified data dropped, memory stays ⊥
    AcquireS(P1); LD(P1,B1,⊥)    # P1 reads ⊥ *after* its own ST of 1

:class:`BuggyMSIStaleSharedProtocol` — ``AcquireS`` always fetches
from memory, ignoring a modified owner (no downgrade, no writeback).
Per-block reads still look plausible, so the smallest counterexample
is the textbook cross-block violation, needing ``b=2``::

    AcquireM(P1,x); ST(P1,x,1); AcquireM(P1,y); ST(P1,y,1)
    Evict(P1,y)                  # memory y := 1 (x still modified at P1)
    AcquireS(P2,y); LD(P2,y,1)   # P2 sees the *newer* write
    AcquireS(P2,x); LD(P2,x,⊥)   # ...then stale memory for the older one

``LD(P2,x,⊥)`` must serialise before ``ST(P1,x,1)``, but program order
and the value of ``y`` chain it after — a cycle.

All three keep honest tracking labels: the data movement they *claim*
is the movement they *do* (the no-writeback evict claims no memory
copy, the stale ``AcquireS`` claims a copy from memory).  The
violations are genuine protocol bugs, not tracking lies — exactly the
adversaries Section 4's checker must catch.
"""

from __future__ import annotations

from .msi import MSIProtocol

__all__ = [
    "BuggyMSIProtocol",
    "BuggyMSINoWritebackProtocol",
    "BuggyMSIStaleSharedProtocol",
    "BUGGY_VARIANTS",
]


class BuggyMSIProtocol(MSIProtocol):
    """MSI with the invalidation on AcquireM omitted — not SC."""

    invalidate_on_acquire_m = False

    def __init__(self, p: int = 2, b: int = 1, v: int = 1, *, allow_evict: bool = True):
        super().__init__(p, b, v, allow_evict=allow_evict)


class BuggyMSINoWritebackProtocol(MSIProtocol):
    """MSI whose Evict drops modified data without writeback — not SC."""

    writeback_on_evict = False

    def __init__(self, p: int = 2, b: int = 1, v: int = 1, *, allow_evict: bool = True):
        super().__init__(p, b, v, allow_evict=allow_evict)


class BuggyMSIStaleSharedProtocol(MSIProtocol):
    """MSI whose AcquireS ignores a modified owner and reads stale
    memory — not SC (cross-block violation, hence ``b=2`` default)."""

    acquire_s_from_owner = False

    def __init__(self, p: int = 2, b: int = 2, v: int = 1, *, allow_evict: bool = True):
        super().__init__(p, b, v, allow_evict=allow_evict)


#: every buggy variant with the smallest configuration at which its
#: violation is reachable — the catch-rate regression sweeps this
BUGGY_VARIANTS = (
    (BuggyMSIProtocol, (2, 1, 1)),
    (BuggyMSINoWritebackProtocol, (2, 1, 1)),
    (BuggyMSIStaleSharedProtocol, (2, 2, 1)),
)
