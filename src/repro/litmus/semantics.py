"""Reference semantics for litmus programs under four memory models.

Each enumerator returns the *set of outcomes* (canonical sorted
register tuples) the model allows:

* :func:`outcomes_serial_realtime` — the paper's "serial memory" read
  of Figure 1: operations execute atomically at a *fixed* real-time
  schedule, so exactly one outcome results.
* :func:`outcomes_sc` — sequential consistency: every interleaving of
  the program orders against an atomic memory.
* :func:`outcomes_tso` — total store order: per-processor FIFO store
  buffers with forwarding and nondeterministic drain.
* :func:`outcomes_relaxed` — the fully relaxed model Figure 1 alludes
  to ("ignoring program order"): each load may return the value of any
  store to its block, or ⊥, independently (no coherence, no order).

All are exhaustive searches with memoisation; litmus programs are tiny.
"""

from __future__ import annotations

from itertools import product as iproduct
from typing import Dict, List, Sequence, Set, Tuple

from .programs import Ld, LitmusProgram, Outcome, St

__all__ = [
    "outcomes_serial_realtime",
    "outcomes_sc",
    "outcomes_tso",
    "outcomes_relaxed",
    "classify_outcomes",
]

BOTTOM = 0


def _canon(regs: Dict[str, int]) -> Outcome:
    return tuple(sorted(regs.items()))


def outcomes_serial_realtime(
    program: LitmusProgram, schedule: Sequence[Tuple[int, int]]
) -> Set[Outcome]:
    """Execute at a fixed real-time schedule: ``schedule`` lists
    ``(proc, instr_index)`` pairs in real-time order and must cover
    every instruction exactly once.  Returns the single outcome."""
    mem: Dict[int, int] = {}
    regs: Dict[str, int] = {}
    done = [0] * program.num_procs
    for proc, idx in schedule:
        if idx != done[proc - 1]:
            raise ValueError("schedule violates per-processor order")
        ins = program.procs[proc - 1][idx]
        if isinstance(ins, St):
            mem[ins.block] = ins.value
        else:
            regs[ins.reg] = mem.get(ins.block, BOTTOM)
        done[proc - 1] += 1
    if any(d != len(program.procs[i]) for i, d in enumerate(done)):
        raise ValueError("schedule does not cover the whole program")
    return {_canon(regs)}


def outcomes_sc(program: LitmusProgram) -> Set[Outcome]:
    """All outcomes over all interleavings (sequential consistency)."""
    n = program.num_procs
    out: Set[Outcome] = set()
    seen: Set[Tuple] = set()

    def rec(pos: Tuple[int, ...], mem: Tuple[Tuple[int, int], ...], regs: Tuple):
        key = (pos, mem, regs)
        if key in seen:
            return
        seen.add(key)
        if all(pos[i] == len(program.procs[i]) for i in range(n)):
            out.add(tuple(sorted(regs)))
            return
        memd = dict(mem)
        for i in range(n):
            if pos[i] == len(program.procs[i]):
                continue
            ins = program.procs[i][pos[i]]
            npos = pos[:i] + (pos[i] + 1,) + pos[i + 1 :]
            if isinstance(ins, St):
                nmem = dict(memd)
                nmem[ins.block] = ins.value
                rec(npos, tuple(sorted(nmem.items())), regs)
            else:
                val = memd.get(ins.block, BOTTOM)
                rec(npos, mem, regs + ((ins.reg, val),))

    rec((0,) * n, (), ())
    return out


def outcomes_tso(program: LitmusProgram) -> Set[Outcome]:
    """All outcomes under TSO: FIFO store buffer per processor, with
    store-to-load forwarding and nondeterministic flushes."""
    n = program.num_procs
    out: Set[Outcome] = set()
    seen: Set[Tuple] = set()

    def rec(pos, mem, bufs, regs):
        key = (pos, mem, bufs, regs)
        if key in seen:
            return
        seen.add(key)
        if all(pos[i] == len(program.procs[i]) for i in range(n)) and all(
            not b for b in bufs
        ):
            out.add(tuple(sorted(regs)))
            return
        memd = dict(mem)
        for i in range(n):
            # flush the oldest buffered store
            if bufs[i]:
                (blk, val) = bufs[i][0]
                nmem = dict(memd)
                nmem[blk] = val
                nbufs = bufs[:i] + (bufs[i][1:],) + bufs[i + 1 :]
                rec(pos, tuple(sorted(nmem.items())), nbufs, regs)
            # issue the next instruction
            if pos[i] < len(program.procs[i]):
                ins = program.procs[i][pos[i]]
                npos = pos[:i] + (pos[i] + 1,) + pos[i + 1 :]
                if isinstance(ins, St):
                    nbufs = bufs[:i] + (bufs[i] + ((ins.block, ins.value),),) + bufs[i + 1 :]
                    rec(npos, mem, nbufs, regs)
                else:
                    fwd = None
                    for (blk, val) in reversed(bufs[i]):
                        if blk == ins.block:
                            fwd = val
                            break
                    val = fwd if fwd is not None else memd.get(ins.block, BOTTOM)
                    rec(npos, mem, bufs, regs + ((ins.reg, val),))

    rec((0,) * n, (), ((),) * n, ())
    return out


def outcomes_relaxed(program: LitmusProgram) -> Set[Outcome]:
    """The "no program order" model of Figure 1's last sentence: every
    load independently returns ⊥ or the value of *any* store to its
    block anywhere in the program."""
    loads: List[Ld] = [
        ins for seq in program.procs for ins in seq if isinstance(ins, Ld)
    ]
    per_block: Dict[int, Set[int]] = {}
    for seq in program.procs:
        for ins in seq:
            if isinstance(ins, St):
                per_block.setdefault(ins.block, set()).add(ins.value)
    choices = [
        sorted(per_block.get(ld.block, set()) | {BOTTOM}) for ld in loads
    ]
    out: Set[Outcome] = set()
    for combo in iproduct(*choices):
        out.add(_canon({ld.reg: v for ld, v in zip(loads, combo)}))
    return out


def classify_outcomes(program: LitmusProgram) -> Dict[Outcome, str]:
    """Tag every relaxed-reachable outcome with the strongest model
    allowing it: ``"SC"`` ⊂ ``"TSO"`` ⊂ ``"relaxed"``."""
    sc = outcomes_sc(program)
    tso = outcomes_tso(program)
    relaxed = outcomes_relaxed(program)
    tags: Dict[Outcome, str] = {}
    for o in sorted(relaxed | tso | sc):
        if o in sc:
            tags[o] = "SC"
        elif o in tso:
            tags[o] = "TSO"
        else:
            tags[o] = "relaxed"
    return tags
