"""Exploration statistics shared by every engine-driven search."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ExplorationStats"]


@dataclass
class ExplorationStats:
    """Counters filled in by a reachability / product exploration."""

    states: int = 0  #: distinct states found
    transitions: int = 0  #: transitions expanded
    max_depth: int = 0  #: deepest BFS layer reached
    truncated: bool = False  #: hit a cap or budget before exhausting
    quiescent_states: int = 0  #: states where the end-check was evaluated
    max_live_nodes: int = 0  #: observer active-graph high-water mark
    max_descriptor_ids: int = 0  #: IDs the observer ever allocated
    #: high-water mark of the search frontier, cumulative over the
    #: whole search — a budget-stopped run that resumes keeps maxing
    #: against the earlier legs' peak, never restarts from zero
    peak_frontier: int = 0
    #: states interned in the engine's StateStore; like
    #: ``peak_frontier`` it survives checkpoint/resume because the
    #: stats object travels with the pickled search
    interned_states: int = 0
    #: why a cooperative ``should_stop`` hook halted the search (None
    #: for cap truncation and for exhaustive runs)
    stop_reason: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "states": self.states,
            "transitions": self.transitions,
            "max_depth": self.max_depth,
            "truncated": self.truncated,
            "quiescent_states": self.quiescent_states,
            "max_live_nodes": self.max_live_nodes,
            "max_descriptor_ids": self.max_descriptor_ids,
            "peak_frontier": self.peak_frontier,
            "interned_states": self.interned_states,
            "stop_reason": self.stop_reason,
        }
