"""The command-line interface."""

import pytest

from repro.cli import PROTOCOLS, build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_verify_sc_protocol(capsys):
    code, out = run_cli(capsys, "verify", "serial", "--b", "1", "--v", "1")
    assert code == 0
    assert "SEQUENTIALLY CONSISTENT" in out


def test_verify_non_sc_protocol_exit_code(capsys):
    code, out = run_cli(capsys, "verify", "buggy-msi")
    assert code == 1
    assert "NOT SC" in out and "SC violation" in out


def test_verify_lazy_uses_right_generator_by_default(capsys):
    code, out = run_cli(capsys, "verify", "lazy")
    assert code == 0


def test_verify_lazy_real_time_order_rejected(capsys):
    code, out = run_cli(capsys, "verify", "lazy", "--real-time-order")
    assert code == 1


def test_verify_full_mode(capsys):
    code, out = run_cli(capsys, "verify", "serial", "--p", "1", "--b", "1", "--v", "1", "--mode", "full")
    assert code == 0


def test_verify_bounded(capsys):
    code, out = run_cli(capsys, "verify", "msi", "--max-states", "20")
    assert "bounded" in out or "NOT SC" in out


def test_zoo(capsys):
    code, out = run_cli(capsys, "zoo", "--max-states", "5000")
    assert code == 0  # every zoo verdict as expected
    assert "Protocol zoo" in out
    for name in PROTOCOLS:
        assert name in out


def test_litmus_classification(capsys):
    code, out = run_cli(capsys, "litmus", "sb")
    assert code == 0
    assert "TSO" in out


def test_litmus_on_protocol(capsys):
    code, out = run_cli(capsys, "litmus", "sb", "--on", "msi")
    assert code == 0
    code, out = run_cli(capsys, "litmus", "sb", "--on", "storebuffer")
    assert code == 1  # produces a non-SC outcome


def test_fuzz_clean(capsys):
    code, out = run_cli(capsys, "fuzz", "msi", "--runs", "20", "--length", "10")
    assert code == 0
    assert "0 violations" in out


def test_fuzz_finds_violation(capsys):
    code, out = run_cli(capsys, "fuzz", "storebuffer", "--runs", "200", "--length", "10", "--seed", "7")
    assert code == 1
    assert "first violation" in out


def test_bounds_table(capsys):
    code, out = run_cli(capsys, "bounds")
    assert code == 0
    assert "bandwidth L+pb" in out


def test_parser_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["verify", "nonexistent"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_descriptor_accepts_valid(capsys):
    code, out = run_cli(
        capsys,
        "descriptor",
        "1, ST(P1,B1,1), 2, LD(P2,B1,1), (1,2), inh",
    )
    assert code == 0
    assert "ACCEPTS" in out


def test_descriptor_rejects_cycle(capsys):
    code, out = run_cli(
        capsys, "descriptor", "1, ST(P1,B1,1), 2, ST(P2,B1,1), (1,2), STo, (2,1), po"
    )
    assert code == 1
    assert "REJECTS" in out


def test_descriptor_rejects_annotation_violation(capsys):
    # inheritance with a value mismatch: acyclic but not a constraint graph
    code, out = run_cli(
        capsys, "descriptor", "1, ST(P1,B1,1), 2, LD(P2,B1,2), (1,2), inh"
    )
    assert code == 1
    assert "constraint-graph checker: REJECTS" in out


def test_descriptor_paper_figure3_string(capsys):
    text = (
        "1, ST(P1,B1,1), 2, LD(P2,B1,1), (1,2), inh, 3, ST(P1,B1,2), "
        "(1,3), po-STo, 4, LD(P2,B1,1), (1,4), inh, (2,4), po, (4,3), forced, "
        "1, LD(P2,B1,2), (3,1), inh, (4,1), po"
    )
    code, out = run_cli(capsys, "descriptor", text)
    assert code == 0, out


def test_descriptor_parse_error_is_exit_2(capsys):
    code, out = run_cli(capsys, "descriptor", "this is not a descriptor ((")
    assert code == 2
    assert "error:" in out


# exit-code contract: 0 = verdict met, 1 = violation found, 2 = usage/parse


def test_check_run_cli_ok(capsys, tmp_path):
    f = tmp_path / "run.txt"
    f.write_text("protocol: msi\nAcquireM(1,1)\nST(P1,B1,1)\nLD(P1,B1,1)\n")
    code, out = run_cli(capsys, "check-run", str(f))
    assert code == 0
    assert "run consistent" in out


def test_check_run_cli_parse_error_is_exit_2(capsys, tmp_path):
    f = tmp_path / "run.txt"
    f.write_text("protocol: msi\ngibberish\nmore gibberish\n")
    code, out = run_cli(capsys, "check-run", str(f))
    assert code == 2
    assert "2 parse errors" in out
    assert "line 2" in out and "line 3" in out


def test_verify_budget_checkpoint_resume_roundtrip(capsys, tmp_path):
    cp = tmp_path / "msi.ckpt"
    code, out = run_cli(
        capsys, "verify", "msi", "--budget-states", "50", "--checkpoint", str(cp)
    )
    assert code == 0  # truncated, no violation
    assert "state budget exhausted" in out
    assert f"checkpoint written: {cp}" in out
    assert cp.exists()

    code, out = run_cli(capsys, "verify", "--resume", str(cp))
    assert code == 0
    assert "SEQUENTIALLY CONSISTENT" in out


def test_verify_resume_plus_protocol_is_exit_2(capsys, tmp_path):
    code, out = run_cli(capsys, "verify", "msi", "--resume", str(tmp_path / "x"))
    assert code == 2


def test_verify_resume_missing_file_is_exit_2(capsys, tmp_path):
    code, out = run_cli(capsys, "verify", "--resume", str(tmp_path / "nope.ckpt"))
    assert code == 2
    assert "error:" in out


def test_verify_degrade_needs_wall_budget(capsys):
    code, out = run_cli(capsys, "verify", "serial", "--degrade")
    assert code == 2


def test_verify_degrade_with_budget(capsys):
    code, out = run_cli(capsys, "verify", "serial", "--degrade", "--budget-s", "30")
    assert code == 0


def test_fault_matrix_cli(capsys):
    code, out = run_cli(capsys, "fault-matrix", "--protocols", "serial")
    assert code == 0
    assert "expectations met" in out
    assert "(none)" in out  # the unfaulted baseline row


def test_fault_matrix_unknown_protocol_is_exit_2(capsys):
    code, out = run_cli(capsys, "fault-matrix", "--protocols", "nosuch")
    assert code == 2


def test_verify_workers_checkpoint_resume_roundtrip(capsys, tmp_path):
    cp = tmp_path / "par.ckpt"
    code, out = run_cli(
        capsys, "verify", "msi", "--b", "1", "--v", "1",
        "--budget-states", "100", "--checkpoint", str(cp), "--workers", "2",
    )
    assert code == 0 and cp.exists()
    code, out = run_cli(capsys, "verify", "--resume", str(cp), "--workers", "3")
    assert code == 0
    assert "SEQUENTIALLY CONSISTENT" in out


def test_verify_v2_checkpoint_with_workers_is_exit_2(capsys, tmp_path):
    cp = tmp_path / "seq.ckpt"
    code, _ = run_cli(
        capsys, "verify", "msi", "--b", "1", "--v", "1",
        "--budget-states", "100", "--checkpoint", str(cp),
    )
    assert cp.exists()
    code, out = run_cli(capsys, "verify", "--resume", str(cp), "--workers", "2")
    assert code == 2
    assert "version-2" in out and "--workers 1" in out


def test_verify_corrupted_checkpoint_is_exit_2(capsys, tmp_path):
    cp = tmp_path / "bad.ckpt"
    cp.write_bytes(b"\x00\x01 not a pickle")
    code, out = run_cli(capsys, "verify", "--resume", str(cp))
    assert code == 2
    assert "error:" in out


# ------------------------------------------------- telemetry flags + metrics


def test_verify_trace_log_and_metrics_summary(capsys, tmp_path):
    trace = tmp_path / "t.jsonl"
    code, out = run_cli(
        capsys, "verify", "msi", "--v", "1", "--trace-log", str(trace)
    )
    assert code == 0 and trace.exists()

    code, out = run_cli(capsys, "metrics", str(trace))
    assert code == 0
    assert "SEQUENTIALLY CONSISTENT" in out
    assert "states: 1290" in out
    assert "search.states" in out  # the gauge table


def test_verify_parallel_trace_per_shard_sum_equals_total(capsys, tmp_path):
    trace = tmp_path / "t4.jsonl"
    code, _ = run_cli(
        capsys, "verify", "msi", "--v", "1", "--workers", "2",
        "--trace-log", str(trace),
    )
    assert code == 0

    from repro.obs import read_trace

    events = read_trace(str(trace))
    assert any(e["ev"] == "shard_round" for e in events)
    end = events[-1]
    assert end["ev"] == "run_end"
    assert sum(s["interned_states"] for s in end["shards"]) == end["states"]

    code, out = run_cli(capsys, "metrics", str(trace))
    assert code == 0
    assert "Per-shard exploration" in out


def test_verify_progress_heartbeat_goes_to_stderr(capsys):
    code = main(["verify", "msi", "--v", "1", "--progress", "0.01"])
    captured = capsys.readouterr()
    assert code == 0
    assert "progress:" in captured.err
    assert "progress:" not in captured.out  # verdict output stays clean


def test_verify_profile_prints_span_table(capsys):
    code, out = run_cli(capsys, "verify", "serial", "--b", "1", "--v", "1",
                        "--profile")
    assert code == 0
    assert "Profile (span tree)" in out
    assert "phase.search" in out
    assert "\n  expand" in out  # engine spans nest under the phase


def test_metrics_malformed_trace_is_exit_2(capsys, tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ev": "run_end", "ts": 1.0, "seq": 0}\n')  # missing fields
    code, out = run_cli(capsys, "metrics", str(bad))
    assert code == 2
    assert "malformed" in out


def test_metrics_diff_two_snapshots(capsys, tmp_path):
    import json

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps({"counters": {"n": 1}, "gauges": {}, "timers": {}}))
    b.write_text(json.dumps({"counters": {"n": 2}, "gauges": {}, "timers": {}}))
    code, out = run_cli(capsys, "metrics", str(a), str(b))
    assert code == 0
    assert "counter:n" in out
    code, out = run_cli(capsys, "metrics", str(a), str(a))
    assert "no metric differences" in out


def test_metrics_record_and_check_bench(capsys, tmp_path):
    import json

    trace = tmp_path / "t.jsonl"
    code, _ = run_cli(capsys, "verify", "msi", "--v", "1",
                      "--trace-log", str(trace))
    assert code == 0

    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps({
        "current": {"workloads": {"msi_p2b1v1": {"seconds": 3600.0, "states": 1290}}}
    }))
    code, out = run_cli(
        capsys, "metrics", str(trace), "--record", str(bench),
        "--workload", "msi_p2b1v1",
        "--check-bench", str(bench), "--max-regression", "0.05",
    )
    assert code == 0, out  # any real run beats a 3600 s baseline
    assert "recorded run entry" in out and "bench check:" in out
    record = json.loads(bench.read_text())
    assert record["runs"][0]["workload"] == "msi_p2b1v1"
    assert record["runs"][0]["states"] == 1290


def test_metrics_check_bench_detects_regression_and_mismatch(capsys, tmp_path):
    import json

    trace = tmp_path / "t.jsonl"
    run_cli(capsys, "verify", "msi", "--v", "1", "--trace-log", str(trace))

    bench = tmp_path / "bench.json"
    # impossibly fast baseline -> any run is a >5% regression
    bench.write_text(json.dumps({
        "current": {"workloads": {"msi_p2b1v1": {"seconds": 1e-9, "states": 1290}}}
    }))
    code, out = run_cli(capsys, "metrics", str(trace),
                        "--workload", "msi_p2b1v1", "--check-bench", str(bench))
    assert code == 1
    assert "REGRESSION" in out

    # same-name workload with different state count: not the same search
    bench.write_text(json.dumps({
        "current": {"workloads": {"msi_p2b1v1": {"seconds": 3600.0, "states": 7}}}
    }))
    code, out = run_cli(capsys, "metrics", str(trace),
                        "--workload", "msi_p2b1v1", "--check-bench", str(bench))
    assert code == 1
    assert "state-count mismatch" in out

    # unknown workload / missing --workload are usage errors
    code, out = run_cli(capsys, "metrics", str(trace),
                        "--workload", "nosuch", "--check-bench", str(bench))
    assert code == 2
    code, out = run_cli(capsys, "metrics", str(trace),
                        "--check-bench", str(bench))
    assert code == 2


def test_fault_matrix_trace_log(capsys, tmp_path):
    trace = tmp_path / "fm.jsonl"
    code, out = run_cli(capsys, "fault-matrix", "--protocols", "serial",
                        "--trace-log", str(trace))
    assert code == 0

    from repro.obs import read_trace

    events = read_trace(str(trace))
    activated = [e for e in events if e["ev"] == "fault_activated"]
    assert activated and activated[0]["protocol"] == "serial"
    assert activated[0]["fault"] == "(none)"  # the baseline row


def test_degrade_trace_has_stage_events(capsys, tmp_path):
    trace = tmp_path / "deg.jsonl"
    code, out = run_cli(
        capsys, "verify", "msi", "--degrade", "--budget-s", "0.05",
        "--trace-log", str(trace),
    )
    assert code == 0

    from repro.obs import read_trace

    stages = [e["stage"] for e in read_trace(str(trace))
              if e["ev"] == "degrade_stage"]
    assert stages and stages[0] == "model-check"


# --------------------------------------------- report: run/trend documents


def _traced_violation(tmp_path, capsys):
    trace = str(tmp_path / "v.jsonl")
    run_cli(capsys, "verify", "buggy-msi", "--trace-log", trace)
    return trace


def test_report_renders_a_run_report_from_a_trace(capsys, tmp_path):
    trace = _traced_violation(tmp_path, capsys)
    code, out = run_cli(capsys, "report", trace)
    assert code == 0
    assert "# Verification run report" in out
    assert "## Span tree" in out and "phase.search" in out
    assert "violation_found" in out
    assert "NOT SC" in out


def test_report_renders_html(capsys, tmp_path):
    trace = _traced_violation(tmp_path, capsys)
    out_file = tmp_path / "r.html"
    code, out = run_cli(capsys, "report", trace, "--format", "html",
                        "-o", str(out_file))
    assert code == 0 and "report written:" in out
    html = out_file.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "<table>" in html and "phase.search" in html


def test_report_renders_ledger_trends(capsys, tmp_path):
    led = str(tmp_path / "led.jsonl")
    run_cli(capsys, "verify", "serial", "--b", "1", "--v", "1", "--ledger", led)
    run_cli(capsys, "verify", "serial", "--b", "1", "--v", "1", "--ledger", led)
    code, out = run_cli(capsys, "report", "--ledger", led)
    assert code == 0
    assert "Ledger runs by search hash" in out
    assert "SerialMemory" in out and "| 2 |" in out  # two runs, one row


def test_report_tolerates_a_torn_trace(capsys, tmp_path):
    trace = _traced_violation(tmp_path, capsys)
    text = open(trace).read()
    torn = tmp_path / "torn.jsonl"
    torn.write_text(text[:-30])  # rip the final line
    code, out = run_cli(capsys, "report", str(torn))
    assert code == 0 and "# Verification run report" in out


def test_report_renders_a_flight_dump(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    run_cli(capsys, "verify", "buggy-msi", "--flight")
    dump = tmp_path / "repro-buggy-msi.flight.jsonl"
    assert dump.exists()
    code, out = run_cli(capsys, "report", str(dump))
    assert code == 0 and "violation_found" in out


def test_report_corrupt_trace_exit_2(capsys, tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ev": "nope", "ts": 0, "seq": 0}\n{"ev": "x"}\n')
    code, out = run_cli(capsys, "report", str(bad))
    assert code == 2 and "error:" in out


def test_metrics_diff_of_two_traces(capsys, tmp_path):
    t1 = str(tmp_path / "a.jsonl")
    t2 = str(tmp_path / "b.jsonl")
    run_cli(capsys, "verify", "serial", "--b", "1", "--v", "1",
            "--trace-log", t1)
    run_cli(capsys, "verify", "msi", "--trace-log", t2)
    code, out = run_cli(capsys, "metrics", t1, t2)
    assert code == 0
    assert "Metrics diff" in out and "search.states" in out


def test_metrics_diff_without_snapshot_exit_2(capsys, tmp_path):
    t1 = str(tmp_path / "a.jsonl")
    run_cli(capsys, "verify", "serial", "--b", "1", "--v", "1",
            "--trace-log", t1)
    nosnap = tmp_path / "nosnap.jsonl"
    nosnap.write_text(
        "".join(l for l in open(t1) if '"ev":"metrics"' not in l.replace(" ", ""))
    )
    code, out = run_cli(capsys, "metrics", t1, str(nosnap))
    assert code == 2 and "no metrics snapshot to diff" in out
