"""The budgeted, resumable, gracefully-degrading verification harness.

Production verification never gets unlimited resources.  This package
makes the pipeline survive that:

* :class:`Budget` — wall-clock / state-count / approximate-memory
  limits, threaded through the explorers as a cooperative
  ``should_stop`` hook;
* :class:`Checkpoint` — snapshot of a paused
  :class:`~repro.modelcheck.product.ProductSearch` (frontier +
  seen-set), so a truncated run resumes with a larger budget instead
  of restarting;
* :func:`run_verification` — the budget+checkpoint front door;
* :func:`degrade` — the fallback chain (full model-check →
  bounded-depth model-check → litmus corpus → randomized fuzzing) that
  always returns a :class:`~repro.core.verify.VerificationResult`
  with an honest ``confidence`` rather than crashing or hanging.

See ``docs/ROBUSTNESS.md`` for budget/resume semantics and the
degradation ladder.
"""

from .budget import Budget
from .checkpoint import Checkpoint, CheckpointError
from .degrade import degrade
from .runner import run_verification

__all__ = [
    "Budget",
    "Checkpoint",
    "CheckpointError",
    "degrade",
    "run_verification",
]
