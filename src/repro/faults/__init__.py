"""Systematic fault injection for the verification pipeline.

The checker side of this repository proves protocols *are* SC; this
package stresses the opposite obligation — that broken protocols are
provably **rejected**.  A :class:`FaultSpec` names one seedable
mutation (drop/duplicate an internal message class, stale load hits,
skipped invalidations, corrupted tracking labels, perturbed ST-order
emission); :class:`FaultyProtocol` / :func:`apply_faults` compose
mutations onto any registered protocol; :func:`fault_matrix` verifies
every (protocol × fault) pair against the taxonomy's expectations.

A second axis targets the machinery *underneath* the search:
:mod:`repro.faults.infra` arms deterministic infrastructure faults
(kill/stall a worker at round k, truncate a checkpoint, SIGTERM the
coordinator) against which the engine's supervision layer and the
hardened checkpoint path must recover bit-identically.

See ``docs/ROBUSTNESS.md`` for the full taxonomy and the rationale for
each expected verdict.
"""

from .infra import (
    DEFAULT_STALL_S,
    ENGINE_CHAOS_KINDS,
    INFRA_FAULT_KINDS,
    ChaosError,
    ChaosPlan,
    InfraFault,
    corrupt_file,
    parse_chaos,
)
from .matrix import (
    DEFAULT_MATRIX_PROTOCOLS,
    MatrixEntry,
    MatrixReport,
    fault_matrix,
)
from .spec import (
    EXPECT_NO_COUNTEREXAMPLE,
    EXPECT_REJECT,
    EXPECT_SC,
    FAULT_KINDS,
    FaultInapplicable,
    FaultSpec,
    discover_structure,
    standard_faults,
)
from .wrapper import FaultyProtocol, SwappedSTOrder, apply_faults, compose_copies

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "DEFAULT_STALL_S",
    "ENGINE_CHAOS_KINDS",
    "INFRA_FAULT_KINDS",
    "InfraFault",
    "corrupt_file",
    "parse_chaos",
    "FaultSpec",
    "FaultInapplicable",
    "FAULT_KINDS",
    "EXPECT_SC",
    "EXPECT_REJECT",
    "EXPECT_NO_COUNTEREXAMPLE",
    "standard_faults",
    "discover_structure",
    "FaultyProtocol",
    "SwappedSTOrder",
    "apply_faults",
    "compose_copies",
    "MatrixEntry",
    "MatrixReport",
    "fault_matrix",
    "DEFAULT_MATRIX_PROTOCOLS",
]
