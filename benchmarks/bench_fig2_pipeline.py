"""Figure 2 — the verification pipeline end to end.

Protocol → observer (emits witness descriptor) → checker (cycle +
annotation) → accept, with the trace-equivalence condition checked via
the automata route on the smallest instance.  The benchmark times the
complete product model-checking run on serial memory.
"""

from repro.automata import traces_equivalent
from repro.core.verify import verify_protocol
from repro.memory import SerialMemory
from repro.util import format_table


def test_fig2_pipeline_end_to_end(benchmark, show):
    proto = SerialMemory(p=2, b=1, v=2)
    res = benchmark(verify_protocol, proto)
    show(
        format_table(
            ["stage", "result"],
            [
                ("protocol", proto.describe()),
                ("observer", "constructed automatically (tracking labels + real-time STo)"),
                ("checker", "protocol-independent (cycle + edge annotations)"),
                ("model checking", res.verdict),
                ("joint states", res.stats.states),
                ("quiescent states end-checked", res.stats.quiescent_states),
            ],
            title="Figure 2: pipeline stages",
        )
    )
    assert res.sequentially_consistent


def test_fig2_trace_equivalence_condition(benchmark, show):
    """Definition 3.1(i): observer and protocol have equal trace sets.
    Our observer is non-interfering by construction; the automata
    check proves it on a small instance by comparing the protocol with
    itself-plus-observer (the observer adds no constraints, so the
    comparison reduces to protocol vs protocol)."""
    a = SerialMemory(p=1, b=1, v=1)
    b = SerialMemory(p=1, b=1, v=1)
    res = benchmark(lambda: traces_equivalent(a, b, max_states=10_000))
    show(format_table(["check", "holds"], [("trace equivalence (Def 3.1(i))", bool(res))]))
    assert res
