"""Cooperative resource budgets for verification runs.

A :class:`Budget` bounds a search along three axes — wall-clock
seconds, joint-state count, and approximate memory — and plugs into
the explorers' ``should_stop`` hook
(:meth:`repro.modelcheck.product.ProductSearch.run`,
:func:`repro.modelcheck.explorer.explore`).  The hook is polled once
per expanded state, so stopping is cooperative and the BFS frontier
stays intact — which is what makes checkpoint/resume possible.

Memory accounting is approximate by design: when a memory budget is
set, :meth:`Budget.start` enables :mod:`tracemalloc` (unless the
caller already did) and samples the traced total every
``mem_poll_interval`` polls; a custom ``memory_probe`` (returning MB)
can replace it, e.g. a :func:`sys.getsizeof`-based estimate of the
frontier for runs where tracing overhead matters.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs.stats import ExplorationStats

__all__ = ["Budget"]


@dataclass
class Budget:
    """A reusable wall/state/memory budget.

    Call :meth:`start` once (idempotent), then hand :meth:`should_stop`
    to any explorer.  The wall clock is global to the budget object —
    sharing one budget across many searches (as the fault matrix does)
    bounds their *total* runtime, while the state axis applies to each
    search's own stats.
    """

    wall_s: Optional[float] = None
    states: Optional[int] = None
    memory_mb: Optional[float] = None
    #: polls between (comparatively expensive) memory samples
    mem_poll_interval: int = 256
    #: optional override returning the current footprint in MB
    memory_probe: Optional[Callable[[], float]] = None

    _t0: Optional[float] = field(default=None, repr=False)
    _polls: int = field(default=0, repr=False)
    _owns_tracemalloc: bool = field(default=False, repr=False)

    def start(self) -> "Budget":
        if self._t0 is None:
            self._t0 = time.perf_counter()
            if (
                self.memory_mb is not None
                and self.memory_probe is None
                and not tracemalloc.is_tracing()
            ):
                tracemalloc.start()
                self._owns_tracemalloc = True
        return self

    def stop(self) -> None:
        """Release resources (the tracemalloc hook, if this budget
        enabled it)."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracemalloc = False

    # ------------------------------------------------------------------
    def elapsed_s(self) -> float:
        return 0.0 if self._t0 is None else time.perf_counter() - self._t0

    def remaining_s(self) -> Optional[float]:
        if self.wall_s is None:
            return None
        return max(0.0, self.wall_s - self.elapsed_s())

    def exhausted(self) -> bool:
        rem = self.remaining_s()
        return rem is not None and rem <= 0.0

    def burn(self, states: Optional[int] = None) -> Optional[float]:
        """Fraction of the budget consumed (0..1), or ``None`` when no
        budget axis applies — the progress reporter renders it as
        ``budget=NN%``.  With a ``states`` count the state axis is
        measured too, and the *tighter* (larger) fraction wins, so the
        display always tracks whichever budget will bite first."""
        fracs = []
        if self.wall_s is not None and self.wall_s > 0:
            fracs.append(min(1.0, self.elapsed_s() / self.wall_s))
        if self.states is not None and self.states > 0 and states is not None:
            fracs.append(min(1.0, states / self.states))
        return max(fracs) if fracs else None

    def current_memory_mb(self) -> Optional[float]:
        if self.memory_probe is not None:
            return self.memory_probe()
        if tracemalloc.is_tracing():
            return tracemalloc.get_traced_memory()[0] / (1024 * 1024)
        return None

    # ------------------------------------------------------------------
    def should_stop(self, stats: ExplorationStats) -> Optional[str]:
        """The explorers' cooperative hook: a reason string to halt,
        else None."""
        if self._t0 is None:
            self.start()
        if self.states is not None and stats.states >= self.states:
            return f"state budget exhausted ({self.states} states)"
        if self.wall_s is not None and time.perf_counter() - self._t0 >= self.wall_s:
            return f"wall-clock budget exhausted ({self.wall_s:g}s)"
        self._polls += 1
        if self.memory_mb is not None and self._polls % self.mem_poll_interval == 0:
            mb = self.current_memory_mb()
            if mb is not None and mb >= self.memory_mb:
                return f"memory budget exhausted ({mb:.1f} MB >= {self.memory_mb:g} MB)"
        return None

    # ------------------------------------------------------------------
    def slice(self, fraction: float) -> "Budget":
        """A sub-budget holding ``fraction`` of the *remaining* wall
        clock (state/memory axes carried over) — used by the
        degradation ladder to ration its stages."""
        rem = self.remaining_s()
        return Budget(
            wall_s=None if rem is None else rem * fraction,
            states=self.states,
            memory_mb=self.memory_mb,
            mem_poll_interval=self.mem_poll_interval,
            memory_probe=self.memory_probe,
        )
