"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``verify``   model-check one protocol (the Figure 2 pipeline)
``zoo``      verdict table for the whole protocol zoo
``litmus``   run a litmus program against the reference models and,
             optionally, a protocol
``fuzz``     randomised per-run testing (the Section 5 scenario)
``bounds``   Section 4.4 size-bound table for given parameters
``report``   condensed re-run of every experiment, as markdown — or,
             given a trace/--ledger/--bench, a self-contained run
             report / trend document (markdown or HTML)
``runs``     list, filter, show and gc the run ledger (--ledger)
``descriptor`` check a descriptor string (paper syntax) for acyclic
             constraint-graph-ness
``check-run`` judge a recorded protocol run from a log file (§5)
``fault-matrix`` verify every (protocol × injected fault) pair and
             check the checker catches what it must (docs/ROBUSTNESS.md)
``metrics``  summarise a run's trace/metrics snapshot, diff two, append
             a normalized benchmark entry, or gate on a states/sec
             regression (docs/OBSERVABILITY.md)

Protocols are addressed by name (see ``PROTOCOLS``); each entry knows
its default ST-order generator, so ``python -m repro verify lazy``
just works.

Exit codes: 0 success / verdict met, 1 an SC violation (or unmet
fault-matrix expectation) was found, 2 usage or input-parse errors.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from .core.bounds import bounds_for
from .core.storder import STOrderGenerator
from .core.verify import verify_protocol
from .engine.por import POR_LEVELS
from .engine.reduction import REDUCE_LEVELS
from .engine.strategy import STRATEGIES
from .litmus import (
    CORPUS,
    classify_outcomes,
    fuzz_protocol,
    outcomes_on_protocol,
    outcomes_sc,
)
from .memory import (
    BuggyMSINoWritebackProtocol,
    BuggyMSIProtocol,
    BuggyMSIStaleSharedProtocol,
    DirectoryProtocol,
    DragonProtocol,
    FencedStoreBufferProtocol,
    LazyCachingProtocol,
    MESIProtocol,
    MOESIProtocol,
    MSIProtocol,
    SerialMemory,
    StoreBufferProtocol,
    WriteThroughProtocol,
    lazy_caching_st_order,
    store_buffer_st_order,
)
from .models import MODELS
from .obs.flight import DEFAULT_FLIGHT_CAPACITY
from .obs.ledger import DEFAULT_LEDGER_PATH
from .util import format_table

__all__ = ["main", "PROTOCOLS", "NON_SC_PROTOCOLS"]

#: name -> (constructor, default generator factory or None, default p/b/v)
PROTOCOLS: Dict[str, Tuple[Callable, Optional[Callable[[], STOrderGenerator]], Tuple[int, int, int]]] = {
    "serial": (SerialMemory, None, (2, 1, 2)),
    "msi": (MSIProtocol, None, (2, 1, 2)),
    "mesi": (MESIProtocol, None, (2, 1, 2)),
    "moesi": (MOESIProtocol, None, (2, 1, 1)),
    "dragon": (DragonProtocol, None, (2, 1, 1)),
    "write-through": (WriteThroughProtocol, None, (2, 1, 2)),
    "fenced-sb": (FencedStoreBufferProtocol, store_buffer_st_order, (2, 1, 1)),
    "directory": (DirectoryProtocol, None, (2, 1, 1)),
    "lazy": (LazyCachingProtocol, lazy_caching_st_order, (2, 1, 1)),
    "storebuffer": (StoreBufferProtocol, store_buffer_st_order, (2, 2, 1)),
    "buggy-msi": (BuggyMSIProtocol, None, (2, 1, 1)),
    "buggy-msi-nowb": (BuggyMSINoWritebackProtocol, None, (2, 1, 1)),
    "buggy-msi-stale-s": (BuggyMSIStaleSharedProtocol, None, (2, 2, 1)),
}

#: registry names whose (unmodified) protocol is expected non-SC
NON_SC_PROTOCOLS = frozenset(
    {"storebuffer", "buggy-msi", "buggy-msi-nowb", "buggy-msi-stale-s"}
)


def _make_protocol(args) -> Tuple[object, Optional[STOrderGenerator]]:
    ctor, gen_factory, (dp, db, dv) = PROTOCOLS[args.protocol]
    proto = ctor(
        p=args.p if args.p is not None else dp,
        b=args.b if args.b is not None else db,
        v=args.v if args.v is not None else dv,
    )
    gen = gen_factory() if gen_factory is not None else None
    if getattr(args, "real_time_order", False):
        gen = None
    return proto, gen


def _add_protocol_args(sub, with_params: bool = True) -> None:
    sub.add_argument("protocol", choices=sorted(PROTOCOLS))
    if with_params:
        sub.add_argument("--p", type=int, default=None, help="processors")
        sub.add_argument("--b", type=int, default=None, help="blocks")
        sub.add_argument("--v", type=int, default=None, help="values")


def _add_telemetry_args(sub) -> None:
    sub.add_argument("--trace-log", metavar="PATH", default=None,
                     help="write a structured JSONL run trace here "
                          "(inspect with 'repro metrics PATH')")
    sub.add_argument("--progress", nargs="?", const=2.0, type=float,
                     default=None, metavar="SECONDS",
                     help="print a live progress heartbeat (states/sec, "
                          "frontier, budget burn) to stderr, at most every "
                          "SECONDS (default 2)")
    sub.add_argument("--flight", nargs="?", const=DEFAULT_FLIGHT_CAPACITY,
                     type=int, default=None, metavar="N",
                     help="keep a bounded in-memory ring of the last N trace "
                          f"events (default {DEFAULT_FLIGHT_CAPACITY}) even "
                          "without --trace-log; dumped as schema-valid JSONL "
                          "on a violation, crash or signal stop "
                          "(<trace>.flight.jsonl — readable by 'repro "
                          "metrics' and 'repro report')")


def _telemetry_from_args(args):
    """Build a :class:`repro.obs.Telemetry` from the CLI flags, or
    ``None`` when every telemetry flag is off (the zero-cost default:
    no telemetry object means no telemetry call anywhere)."""
    profile = getattr(args, "profile", False)
    trace_log = getattr(args, "trace_log", None)
    progress = getattr(args, "progress", None)
    flight_n = getattr(args, "flight", None)
    ledger = getattr(args, "ledger", None)
    if (
        not profile
        and trace_log is None
        and progress is None
        and flight_n is None
        and ledger is None
    ):
        return None
    from .obs import (
        FlightRecorder,
        MetricsRegistry,
        ProgressReporter,
        Telemetry,
        TraceWriter,
    )

    # --ledger rides along so the recorded entry carries a full metrics
    # snapshot (span tree included), not just the deterministic gauges
    registry = (
        MetricsRegistry()
        if (profile or trace_log is not None or ledger is not None)
        else None
    )
    trace = TraceWriter.open(trace_log) if trace_log is not None else None
    reporter = ProgressReporter(interval=progress) if progress is not None else None
    flight = None
    if flight_n is not None:
        base = (
            trace_log
            if trace_log is not None
            else f"repro-{getattr(args, 'protocol', None) or 'run'}"
        )
        try:
            flight = FlightRecorder(flight_n, path=f"{base}.flight.jsonl")
        except ValueError as exc:
            print(f"error: {exc}")
            raise SystemExit(2)
    return Telemetry(registry, trace, reporter, flight=flight)


def cmd_verify(args) -> int:
    telemetry = _telemetry_from_args(args)
    try:
        code = _cmd_verify(args, telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
            flight = telemetry.flight
            if flight is not None and flight.dumped is not None:
                dest, reason, n = flight.dumped
                print(
                    f"flight recorder: {n} event(s) dumped to {dest} ({reason})",
                    file=sys.stderr,
                )
    if args.profile and telemetry is not None and telemetry.registry is not None:
        # the span tree replaces the old cProfile dump: the phase.search /
        # phase.replay roots with whatever the engines nested under them
        print()
        print(
            telemetry.registry.snapshot().format(
                title="Profile (span tree)", span_tree=True
            )
        )
    return code


def _cmd_verify(args, telemetry=None) -> int:
    from .engine.intern import StoreConfig, StoreError
    from .engine.por import PorError
    from .engine.reduction import ReductionError
    from .faults.infra import ChaosError, parse_chaos
    from .harness import Budget, CheckpointError, degrade, run_verification
    from .models import ModelError

    chaos = None
    if args.chaos:
        try:
            chaos = parse_chaos(args.chaos)
        except ChaosError as exc:
            print(f"error: {exc}")
            return 2

    store = None
    if args.store_budget_mb is not None or args.store_dir is not None:
        if args.store != "disk":
            print(
                "error: --store-budget-mb/--store-dir tune the disk "
                "backend; add --store disk"
            )
            return 2
    if args.store is not None:
        store = StoreConfig(
            kind=args.store,
            budget_mb=args.store_budget_mb,
            dir=args.store_dir,
        )

    budget = None
    if (
        args.budget_s is not None
        or args.budget_states is not None
        or args.budget_mb is not None
    ):
        budget = Budget(
            wall_s=args.budget_s, states=args.budget_states, memory_mb=args.budget_mb
        )

    t0 = time.perf_counter()
    try:
        if args.resume is not None:
            if args.protocol is not None:
                print(
                    "error: --resume restores protocol and parameters from the "
                    "checkpoint; drop the protocol argument"
                )
                return 2
            res = run_verification(
                budget=budget,
                checkpoint_path=args.checkpoint or args.resume,
                resume_from=args.resume,
                ledger=args.ledger,
                workers=args.workers,
                reduce=args.reduce,
                model=args.model,
                preemptions=args.preemptions,
                por=args.por,
                worker_retries=args.worker_retries,
                on_worker_failure=args.on_worker_failure,
                round_timeout_s=args.round_timeout_s,
                chaos=chaos,
                store=store,
                telemetry=telemetry,
            )
        else:
            if args.protocol is None:
                print("error: a protocol name (or --resume FILE) is required")
                return 2
            proto, gen = _make_protocol(args)
            if args.degrade:
                if budget is None or budget.wall_s is None:
                    print("error: --degrade needs a wall-clock budget (--budget-s)")
                    return 2
                if (args.model or "sc") != "sc" or args.preemptions is not None:
                    print(
                        "error: --degrade's litmus/fuzz fallbacks check SC "
                        "only; drop --model/--preemptions"
                    )
                    return 2
                if telemetry is not None:
                    telemetry.start_run(
                        protocol=proto.describe(), mode=args.mode, workers=1,
                        degrade=True,
                    )
                    if telemetry.progress is not None:
                        telemetry.progress.budget = budget
                res = degrade(
                    proto, gen, budget=budget, mode=args.mode,
                    workers=args.workers or 1, store=store,
                    telemetry=telemetry,
                )
                if telemetry is not None:
                    telemetry.finish_run(
                        verdict=res.verdict,
                        states=res.stats.states,
                        confidence=res.confidence,
                    )
            else:
                res = run_verification(
                    proto,
                    gen,
                    mode=args.mode,
                    max_states=args.max_states,
                    max_depth=args.max_depth,
                    budget=budget,
                    checkpoint_path=args.checkpoint,
                    strategy=args.strategy,
                    seed=args.seed,
                    workers=args.workers,
                    reduce=args.reduce,
                    model=args.model,
                    preemptions=args.preemptions,
                    por=args.por,
                    worker_retries=args.worker_retries,
                    on_worker_failure=args.on_worker_failure,
                    round_timeout_s=args.round_timeout_s,
                    chaos=chaos,
                    store=store,
                    telemetry=telemetry,
                    ledger=args.ledger,
                )
    except (CheckpointError, PorError, ReductionError, ModelError,
            StoreError) as exc:
        print(f"error: {exc}")
        return 2
    dt = time.perf_counter() - t0
    print(res.summary())
    print(f"elapsed: {dt:.2f}s")
    if getattr(res, "ledger_hash", None) is not None:
        dedup = (
            f"hit — {res.ledger_prior} prior identical run(s)"
            if res.ledger_prior
            else "new search"
        )
        print(f"ledger: {res.ledger_hash[:12]} ({dedup}) -> {args.ledger}")
    elif args.ledger is not None and not args.degrade:
        print("ledger: not recorded (run was stopped or truncated)")
    if res.stats is not None and res.stats.stop_reason is not None:
        where = args.checkpoint or args.resume
        if where:
            print(f"checkpoint written: {where} (resume with --resume {where})")
    if res.counterexample is not None:
        print()
        print(res.counterexample.pretty())
    return 0 if res.sequentially_consistent else 1


def cmd_zoo(args) -> int:
    rows = []
    worst = 0
    for name in sorted(PROTOCOLS):
        ctor, gen_factory, (dp, db, dv) = PROTOCOLS[name]
        proto = ctor(p=dp, b=db, v=dv)
        gen = gen_factory() if gen_factory else None
        t0 = time.perf_counter()
        res = verify_protocol(proto, gen, max_states=args.max_states)
        dt = time.perf_counter() - t0
        rows.append(
            (
                name,
                f"{proto.p}/{proto.b}/{proto.v}",
                "SC" if res.sequentially_consistent else "VIOLATION",
                res.stats.states,
                res.stats.max_live_nodes,
                f"{dt:.2f}s",
            )
        )
        worst += 0 if res.sequentially_consistent == (name not in NON_SC_PROTOCOLS) else 1
    print(
        format_table(
            ["protocol", "p/b/v", "verdict", "joint states", "max live", "time"],
            rows,
            title="Protocol zoo",
        )
    )
    if worst:
        print(f"{worst} unexpected verdict(s)")
    return 0 if worst == 0 else 1


def cmd_litmus(args) -> int:
    programs = {p.name.lower(): p for p in CORPUS}
    prog = programs[args.test.lower()]
    tags = classify_outcomes(prog)
    rows = [
        (" ".join(f"{r}={v}" for r, v in o), tag) for o, tag in sorted(tags.items())
    ]
    print(format_table(["outcome", "strongest model"], rows, title=f"{prog.name}: {prog.description}"))
    if args.on is not None:
        ctor, _gen, (dp, db, dv) = PROTOCOLS[args.on]
        proto = ctor(
            p=max(dp, prog.num_procs),
            b=max(db, max(prog.blocks)),
            v=max(dv, prog.max_value),
        )
        got = outcomes_on_protocol(proto, prog)
        sc = outcomes_sc(prog)
        rows = [
            (
                " ".join(f"{r}={v}" for r, v in o),
                "yes" if o in sc else "no",
                "yes" if o in got else "no",
            )
            for o in sorted(got | sc)
        ]
        print()
        print(format_table(["outcome", "SC allows", f"{args.on} produces"], rows))
        return 0 if got <= sc else 1
    return 0


def cmd_fuzz(args) -> int:
    proto, gen = _make_protocol(args)
    report = fuzz_protocol(
        proto,
        runs=args.runs,
        length=args.length,
        seed=args.seed,
        st_order=gen,
        cross_check_max_ops=args.cross_check,
    )
    print(report.summary())
    if report.violations:
        run, reason = report.violations[0]
        print(f"\nfirst violation ({reason}):")
        for a in run:
            print(f"  {a!r}")
    return 0 if report.ok else 1


def cmd_descriptor(args) -> int:
    import sys as _sys

    from .core.checker import Checker
    from .core.cycle_checker import CycleChecker
    from .core.descriptor import NodeSym, parse_descriptor
    from .core.operations import parse_operation

    text = args.text if args.text is not None else _sys.stdin.read()
    try:
        symbols = parse_descriptor(text)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    # node labels come back as strings; lift them to operations so the
    # full annotation checker can judge the graph
    lifted = []
    labelled = True
    for s_ in symbols:
        if isinstance(s_, NodeSym) and s_.label is not None:
            try:
                s_ = NodeSym(s_.id, parse_operation(str(s_.label)))
            except ValueError:
                labelled = False
        lifted.append(s_)
    cyc = CycleChecker()
    cyc.feed_all(lifted)
    print(f"symbols: {len(lifted)}")
    print(f"cycle checker: {'ACCEPTS (acyclic)' if cyc.accepts else 'REJECTS (cycle)'}")
    if labelled:
        chk = Checker()
        chk.feed_all(lifted)
        bad = chk.violations()
        print(
            "constraint-graph checker: "
            + ("ACCEPTS" if not bad else f"REJECTS — {bad[0]}")
        )
        return 0 if not bad else 1
    print("constraint-graph checker: skipped (non-operation node labels)")
    return 0 if cyc.accepts else 1


def cmd_check_run(args) -> int:
    import sys as _sys

    from .tracefile import check_run_file

    text = open(args.file).read() if args.file != "-" else _sys.stdin.read()
    try:
        verdict = check_run_file(text)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(verdict.verdict)
    return 0 if verdict.ok else 1


def cmd_report(args) -> int:
    if args.trace is None and args.ledger is None and args.bench is None:
        # legacy behaviour: condensed re-run of every experiment
        from .report import generate_report

        text = generate_report()
        print(text)
        return 0 if "MISMATCH" not in text else 1

    from .obs import TraceError
    from .obs.ledger import LedgerError, RunLedger
    from .obs.report import render_report

    try:
        entries = RunLedger(args.ledger).entries() if args.ledger is not None else None
        text = render_report(
            trace_path=args.trace,
            ledger_entries=entries,
            bench_path=args.bench,
            fmt=args.format,
        )
    except (TraceError, LedgerError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    except OSError as exc:
        print(f"error: {exc}")
        return 2
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"report written: {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_runs(args) -> int:
    import json as _json

    from .obs.ledger import LedgerError, RunLedger, group_by_hash

    ledger = RunLedger(args.ledger)
    try:
        if args.gc:
            dropped = ledger.gc(keep=args.keep)
            kept = len(ledger.entries())
            print(
                f"gc: dropped {dropped} entr{'y' if dropped == 1 else 'ies'}, "
                f"kept {kept} (newest {args.keep} per search hash)"
            )
            return 0
        entries = ledger.entries()
    except (LedgerError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    except OSError as exc:
        print(f"error: {exc}")
        return 2

    if args.show is not None:
        matches = [e for e in entries if e.hash.startswith(args.show)]
        if not matches:
            print(f"error: no ledger entry matches hash prefix {args.show!r}")
            return 2
        for e in matches:
            print(_json.dumps(e.as_dict(), indent=2, sort_keys=True, default=str))
        return 0

    if args.protocol is not None:
        entries = [
            e for e in entries
            if args.protocol in str(e.provenance.get("protocol", ""))
        ]
    if args.verdict is not None:
        entries = [e for e in entries if args.verdict.lower() in e.verdict.lower()]
    if args.hash_prefix is not None:
        entries = [e for e in entries if e.hash.startswith(args.hash_prefix)]

    if not entries:
        print(f"no matching runs in {args.ledger}")
        return 0
    rows = [
        (
            e.short_hash,
            time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(e.recorded_at)),
            str(e.provenance.get("protocol", "?")),
            e.verdict,
            e.states,
            f"{e.elapsed_s:.3g}s",
            e.workers,
            e.trace or "-",
        )
        for e in entries
    ]
    print(
        format_table(
            ["hash", "recorded", "protocol", "verdict", "states", "elapsed", "workers", "trace"],
            rows,
            title=f"Run ledger: {args.ledger}",
        )
    )
    groups = group_by_hash(entries)
    dupes = sum(len(g) - 1 for g in groups.values())
    print(
        f"{len(entries)} run(s), {len(groups)} distinct search(es)"
        + (f", {dupes} duplicate run(s) — 'repro runs --gc' prunes them" if dupes else "")
    )
    return 0


def cmd_fault_matrix(args) -> int:
    from .faults import fault_matrix
    from .harness import Budget

    protocols = None
    if args.protocols:
        protocols = tuple(p.strip() for p in args.protocols.split(",") if p.strip())
        unknown = [p for p in protocols if p not in PROTOCOLS]
        if unknown:
            print(f"error: unknown protocol(s): {', '.join(unknown)}")
            return 2
    should_stop = None
    budget = None
    if args.budget_s is not None:
        budget = Budget(wall_s=args.budget_s).start()
        should_stop = budget.should_stop
    telemetry = _telemetry_from_args(args)
    if telemetry is not None and telemetry.progress is not None and budget is not None:
        telemetry.progress.budget = budget
    try:
        report = fault_matrix(
            protocols,
            mode=args.mode,
            max_states=args.max_states,
            should_stop=should_stop,
            seed=args.seed,
            include_baseline=not args.no_baseline,
            workers=args.workers,
            reduce=args.reduce,
            por=args.por,
            telemetry=telemetry,
        )
    finally:
        if budget is not None:
            budget.stop()
        if telemetry is not None:
            telemetry.close()
    print(report.summary())
    return 0 if report.ok else 1


def cmd_metrics(args) -> int:
    from .obs import TraceError
    from .obs.bench import (
        append_run_entry,
        check_states_per_sec,
        load_summary,
        normalized_entry,
    )

    def _load(path):
        try:
            return load_summary(path)
        except TraceError as exc:
            print(f"error: malformed trace {path!r}: {exc}")
            return None
        except OSError as exc:
            print(f"error: {exc}")
            return None

    summary = _load(args.file)
    if summary is None:
        return 2

    if args.file2 is not None:
        other = _load(args.file2)
        if other is None:
            return 2
        for path, s in ((args.file, summary), (args.file2, other)):
            if not s.has_snapshot:
                print(
                    f"error: {path!r} carries no metrics snapshot to diff — "
                    "re-run with --trace-log (the final 'metrics' event holds "
                    "the snapshot) or pass a snapshot JSON"
                )
                return 2
        diffs = summary.snapshot.diff(other.snapshot)
        if not diffs:
            print("no metric differences")
            return 0
        rows = [
            (name, "-" if a is None else _fmt_metric(a),
             "-" if b is None else _fmt_metric(b))
            for name, a, b in diffs
        ]
        print(format_table(
            ["metric", args.file, args.file2], rows, title="Metrics diff"
        ))
        return 0

    print(summary.format())

    code = 0
    if args.record is not None:
        workload = args.workload or summary.protocol or "(unknown)"
        entry = normalized_entry(
            workload,
            summary.elapsed_s,
            summary.states,
            workers=summary.workers or 1,
            reduce=summary.reduce or "off",
            por=summary.por or "off",
        )
        append_run_entry(args.record, entry)
        print(f"\nrecorded run entry for {workload!r} in {args.record}")
    if args.check_bench is not None:
        if args.workload is None:
            print("error: --check-bench needs --workload NAME")
            return 2
        try:
            ok, message = check_states_per_sec(
                args.check_bench,
                args.workload,
                summary,
                max_regression=args.max_regression,
            )
        except TraceError as exc:
            print(f"error: {exc}")
            return 2
        print(f"\nbench check: {message}")
        if not ok:
            code = 1
    return code


def _fmt_metric(v: float) -> str:
    return str(int(v)) if float(v).is_integer() else f"{v:.4f}"


def cmd_bounds(args) -> int:
    rows = []
    for name in sorted(PROTOCOLS):
        ctor, _g, (dp, db, dv) = PROTOCOLS[name]
        proto = ctor(
            p=args.p if args.p is not None else dp,
            b=args.b if args.b is not None else db,
            v=args.v if args.v is not None else dv,
        )
        bb = bounds_for(proto)
        rows.append(
            (name, f"{bb.p}/{bb.b}/{bb.v}", bb.L, bb.bandwidth, bb.state_bits, bb.state_bits_optimised)
        )
    print(
        format_table(
            ["protocol", "p/b/v", "L", "bandwidth L+pb", "state bits", "bits (opt.)"],
            rows,
            title="Section 4.4 observer size bounds",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Automatable verification of sequential consistency (Condon & Hu, SPAA 2001)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    v = sub.add_parser(
        "verify",
        help="model-check one protocol",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes (the contract every caller — CI, harness, scripts — "
            "relies on):\n"
            "  0  the protocol verified sequentially consistent (or a bounded/\n"
            "     budgeted search finished without finding a violation)\n"
            "  1  a violation was found (counterexample printed), or the search\n"
            "     ended without the evidence its caller required\n"
            "  2  usage or input error: bad arguments, an unreadable or\n"
            "     incompatible checkpoint (wrong version, corrupt beyond the\n"
            "     .bak fallback, sequential checkpoint resumed with\n"
            "     --workers > 1, mismatched --reduce level, mismatched --model,\n"
            "     --preemptions or --por), a --reduce level the protocol\n"
            "     declares no symmetry for, an unsupported model combination\n"
            "     (--model causal with --mode full, --reduce or --por,\n"
            "     --preemptions with --model causal), a malformed --chaos\n"
            "     spec, --store-budget-mb/--store-dir without --store disk, or\n"
            "     a checkpoint whose referenced spill files are missing, torn\n"
            "     or CRC-damaged\n"
            "\n"
            "resume semantics: --reduce, --model, --preemptions and --por are\n"
            "search state (baked into the checkpoint's interned keys, run set\n"
            "and ample-set pruning; with --resume they are inherited and an\n"
            "explicit mismatch exits 2 — checkpoints written before the POR\n"
            "layer resume as --por off), while --workers, --store and the\n"
            "supervision knobs are run policy (explicit values override\n"
            "whatever the checkpoint carried; an explicit --store migrates the\n"
            "interned keys into the requested backend, IDs preserved).\n"
            "\n"
            "SIGTERM/SIGINT during the search stop it cooperatively: the final\n"
            "checkpoint (with --checkpoint) is written and the run exits 0\n"
            "through the truncation path, resumable with --resume."
        ),
    )
    v.add_argument("protocol", nargs="?", choices=sorted(PROTOCOLS), default=None,
                   help="protocol name (omit when using --resume)")
    v.add_argument("--p", type=int, default=None, help="processors")
    v.add_argument("--b", type=int, default=None, help="blocks")
    v.add_argument("--v", type=int, default=None, help="values")
    v.add_argument("--mode", choices=["fast", "full"], default="fast")
    v.add_argument("--max-states", type=int, default=None)
    v.add_argument("--max-depth", type=int, default=None)
    v.add_argument(
        "--real-time-order",
        action="store_true",
        help="force the trivial real-time ST-order generator (e.g. to see lazy caching rejected)",
    )
    v.add_argument("--budget-s", type=float, default=None, metavar="S",
                   help="wall-clock budget in seconds")
    v.add_argument("--budget-states", type=int, default=None, metavar="N",
                   help="stop after exploring N joint states (resumable, unlike --max-states)")
    v.add_argument("--budget-mb", type=float, default=None, metavar="MB",
                   help="approximate memory budget (tracemalloc-sampled)")
    v.add_argument("--checkpoint", metavar="FILE", default=None,
                   help="write a resumable checkpoint here if the budget stops the search")
    v.add_argument("--resume", metavar="FILE", default=None,
                   help="resume a checkpointed search (replaces the protocol argument)")
    v.add_argument("--degrade", action="store_true",
                   help="on budget exhaustion fall back to bounded search, litmus corpus "
                        "and fuzzing instead of stopping (needs --budget-s)")
    v.add_argument("--strategy", choices=list(STRATEGIES), default="bfs",
                   help="frontier expansion order (bfs gives shortest counterexamples; "
                        "random-walk probes deep under tight budgets)")
    v.add_argument("--seed", type=int, default=0,
                   help="random-walk frontier seed (ignored by bfs/dfs)")
    v.add_argument("--workers", type=int, default=None, metavar="N",
                   help="shard the search across N worker processes (default 1; "
                        "verdicts and state counts are identical to the sequential "
                        "engine — see docs/PARALLEL.md). Run policy, not search "
                        "state: with --resume an explicit N re-shards the "
                        "checkpointed search (parallel checkpoints only; a "
                        "sequential checkpoint resumes only with workers=1)")
    v.add_argument("--store", choices=["mem", "disk"], default=None,
                   help="state-store backend: mem keeps every interned key in "
                        "RAM (default), disk spills keys past the resident "
                        "budget to an append-only CRC-framed log with an "
                        "mmap'd hash index (see docs/ARCHITECTURE.md). Run "
                        "policy, not search state: verdicts, state counts and "
                        "fingerprints are bit-identical across backends, and "
                        "with --resume an explicit backend migrates the "
                        "checkpointed store")
    v.add_argument("--store-budget-mb", type=float, default=None, metavar="MB",
                   help="resident-key budget for --store disk: keys beyond "
                        "this many MB (pickled size) are evicted to the spill "
                        "log and re-read on demand")
    v.add_argument("--store-dir", metavar="DIR", default=None,
                   help="directory for --store disk spill files (default: a "
                        "fresh repro-store-* directory under the system temp "
                        "dir; checkpoints reference the spill files by path, "
                        "so keep them alongside long-lived checkpoints)")
    v.add_argument("--worker-retries", type=int, default=None, metavar="N",
                   help="worker failures (crash/stall) absorbed before giving "
                        "up (default 2; see docs/ROBUSTNESS.md)")
    v.add_argument("--on-worker-failure",
                   choices=["fail", "reshard", "sequential"], default=None,
                   help="recovery policy when a worker dies or stalls: fail "
                        "immediately, reshard onto the survivors and replay "
                        "from the last round snapshot (default), or "
                        "additionally fall back to the in-process engine once "
                        "retries are exhausted")
    v.add_argument("--round-timeout-s", type=float, default=None, metavar="S",
                   help="per-round deadline for stall detection in the "
                        "parallel engine (doubled after each failure; default "
                        "off — only dead workers are detected)")
    v.add_argument("--chaos", action="append", default=None, metavar="SPEC",
                   help="arm a deterministic engine fault for chaos testing: "
                        "KIND@ROUND[:WORKER][/SECONDS] with KIND one of "
                        "kill-worker, stall-worker (repeatable; e.g. "
                        "kill-worker@2 or stall-worker@3:1/5)")
    v.add_argument("--reduce", choices=list(REDUCE_LEVELS), default=None,
                   help="symmetry-reduction level: canonicalize states under "
                        "processor (proc), processor+block (proc+block) or "
                        "processor+block+value (full) permutations before "
                        "interning, shrinking the explored quotient space "
                        "with identical verdicts and concretely replayable "
                        "counterexamples (default off). Search state, not run "
                        "policy: with --resume the checkpointed level is "
                        "inherited and an explicit mismatch exits 2; ignored "
                        "by --degrade's fall-back phases")
    v.add_argument("--por", choices=list(POR_LEVELS), default=None,
                   help="partial-order reduction: expand only an ample subset "
                        "of each state's enabled actions where the protocol's "
                        "declared independence relation proves the deferred "
                        "ones commute invisibly, shrinking the explored space "
                        "with identical verdicts and concretely replayable "
                        "counterexamples (default off; protocols without a "
                        "POR declaration degrade to full expansion). Search "
                        "state like --reduce: with --resume the checkpointed "
                        "level is inherited and an explicit mismatch exits 2")
    v.add_argument("--model", choices=sorted(MODELS), default=None,
                   help="consistency model to check (default sc; see "
                        "docs/MODELS.md). Search state, not run policy: with "
                        "--resume the checkpointed model is inherited and an "
                        "explicit mismatch exits 2")
    v.add_argument("--preemptions", type=int, default=None, metavar="K",
                   help="restrict the search to runs with at most K context "
                        "switches (SC only) — an under-approximation: a "
                        "violation is real and replays on the full protocol, "
                        "a clean verdict is bounded confidence, never a "
                        "proof. Search state like --reduce/--model: inherited "
                        "on --resume, mismatch exits 2")
    v.add_argument("--profile", action="store_true",
                   help="time the pipeline phases through the telemetry span "
                        "system and print the hierarchical span tree "
                        "(total/self per span) afterwards")
    v.add_argument("--ledger", nargs="?", const=DEFAULT_LEDGER_PATH,
                   default=None, metavar="PATH",
                   help="record the completed run in this append-only run "
                        f"ledger (default {DEFAULT_LEDGER_PATH}), keyed by "
                        "the content hash of its search provenance (protocol/"
                        "mode/strategy/reduce/model/preemptions/por — worker "
                        "count and chaos are run policy, excluded). Stopped "
                        "or truncated runs are not recorded. Inspect with "
                        "'repro runs'")
    _add_telemetry_args(v)
    v.set_defaults(func=cmd_verify)

    z = sub.add_parser("zoo", help="verify every protocol at default parameters")
    z.add_argument("--max-states", type=int, default=None)
    z.set_defaults(func=cmd_zoo)

    l = sub.add_parser("litmus", help="classify a litmus test's outcomes")
    l.add_argument("test", choices=sorted(p.name.lower() for p in CORPUS))
    l.add_argument("--on", choices=sorted(PROTOCOLS), default=None,
                   help="also run the program on this protocol")
    l.set_defaults(func=cmd_litmus)

    f = sub.add_parser("fuzz", help="randomised per-run testing (Section 5)")
    _add_protocol_args(f)
    f.add_argument("--runs", type=int, default=200)
    f.add_argument("--length", type=int, default=15)
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--cross-check", type=int, default=0, metavar="MAX_OPS",
                   help="cross-check traces up to this many ops against the brute-force oracle")
    f.set_defaults(func=cmd_fuzz)

    r = sub.add_parser(
        "report",
        help="with no arguments: run every experiment condensed and print a "
             "markdown report. Given a trace and/or --ledger/--bench: render "
             "a self-contained run report / trend document",
    )
    r.add_argument("trace", nargs="?", default=None,
                   help="trace JSONL (from --trace-log) or flight dump to "
                        "render a run report for: verdict header, span tree, "
                        "shard balance, reduction/POR effectiveness, recovery "
                        "events")
    r.add_argument("--ledger", nargs="?", const=DEFAULT_LEDGER_PATH,
                   default=None, metavar="PATH",
                   help="include cross-run trend tables from this run ledger "
                        "(grouped by search hash)")
    r.add_argument("--bench", metavar="BENCH_JSON", default=None,
                   help="include benchmark trend tables from this "
                        "BENCH_verification.json")
    r.add_argument("--format", choices=["md", "html"], default="md",
                   help="output format (default md; html is a single "
                        "self-contained page)")
    r.add_argument("-o", "--output", metavar="PATH", default=None,
                   help="write the report here instead of stdout")
    r.set_defaults(func=cmd_report)

    ru = sub.add_parser(
        "runs",
        help="list, filter, show and gc the run ledger written by "
             "'verify --ledger'",
    )
    ru.add_argument("--ledger", metavar="PATH", default=DEFAULT_LEDGER_PATH,
                    help=f"ledger path (default {DEFAULT_LEDGER_PATH})")
    ru.add_argument("--protocol", metavar="SUBSTR", default=None,
                    help="only runs whose protocol description contains this")
    ru.add_argument("--verdict", metavar="SUBSTR", default=None,
                    help="only runs whose verdict contains this "
                         "(case-insensitive)")
    ru.add_argument("--hash", dest="hash_prefix", metavar="PREFIX",
                    default=None, help="only runs whose search hash starts "
                                       "with this prefix")
    ru.add_argument("--show", metavar="PREFIX", default=None,
                    help="print the full JSON entries for this hash prefix")
    ru.add_argument("--gc", action="store_true",
                    help="rewrite the ledger keeping only the newest --keep "
                         "entries per search hash")
    ru.add_argument("--keep", type=int, default=1, metavar="N",
                    help="entries kept per hash with --gc (default 1)")
    ru.set_defaults(func=cmd_runs)

    cr = sub.add_parser(
        "check-run",
        help="check a recorded protocol run from a run file (see repro.tracefile)",
    )
    cr.add_argument("file", help="run file path, or '-' for stdin")
    cr.set_defaults(func=cmd_check_run)

    d = sub.add_parser(
        "descriptor",
        help="check a k-graph descriptor in the paper's text syntax (from arg or stdin)",
    )
    d.add_argument("text", nargs="?", default=None,
                   help='e.g. "1, ST(P1,B1,1), 2, LD(P2,B1,1), (1,2), inh"')
    d.set_defaults(func=cmd_descriptor)

    fm = sub.add_parser(
        "fault-matrix",
        help="verify every (protocol × injected fault) pair; fail if the checker "
             "misses a seeded non-SC fault",
    )
    fm.add_argument("--protocols", metavar="NAMES", default=None,
                    help="comma-separated protocol names (default: a representative set)")
    fm.add_argument("--mode", choices=["fast", "full"], default="fast")
    fm.add_argument("--max-states", type=int, default=None)
    fm.add_argument("--budget-s", type=float, default=None, metavar="S",
                    help="total wall-clock budget across all pairs")
    fm.add_argument("--seed", type=int, default=0)
    fm.add_argument("--no-baseline", action="store_true",
                    help="skip the unfaulted baseline row per protocol")
    fm.add_argument("--workers", type=int, default=1, metavar="N",
                    help="shard each pair's search across N worker processes "
                         "(run policy, as in `verify`: verdicts and state "
                         "counts are identical at any N — see "
                         "docs/PARALLEL.md). Matrix runs are one-shot, so "
                         "there is no resume interaction")
    fm.add_argument("--reduce", choices=list(REDUCE_LEVELS), default="off",
                    help="symmetry-reduction level for pairs whose protocol "
                         "declares a symmetry spec (search state, as in "
                         "`verify`; matrix runs are one-shot, so the level "
                         "simply applies to every eligible pair's fresh "
                         "search. Faulted variants run unreduced — faults "
                         "may break index-uniformity)")
    fm.add_argument("--por", choices=list(POR_LEVELS), default="off",
                    help="partial-order-reduction level for pairs whose "
                         "protocol declares a POR spec (as in `verify`; "
                         "protocols without one run fully expanded)")
    _add_telemetry_args(fm)
    fm.set_defaults(func=cmd_fault_matrix)

    m = sub.add_parser(
        "metrics",
        help="summarise a run's trace/metrics, diff two, record or "
             "regression-check states/sec (docs/OBSERVABILITY.md)",
    )
    m.add_argument("file", help="trace JSONL (from --trace-log) or metrics snapshot JSON")
    m.add_argument("file2", nargs="?", default=None,
                   help="second file: print a metric-by-metric diff instead")
    m.add_argument("--record", metavar="BENCH_JSON", default=None,
                   help="append this run as a normalized entry under 'runs' in "
                        "the benchmark file")
    m.add_argument("--workload", metavar="NAME", default=None,
                   help="workload name for --record / --check-bench "
                        "(e.g. msi_p2b1v1)")
    m.add_argument("--check-bench", metavar="BENCH_JSON", default=None,
                   help="compare states/sec against the checked-in baseline for "
                        "--workload; exit 1 on regression beyond tolerance")
    m.add_argument("--max-regression", type=float, default=0.05, metavar="FRAC",
                   help="tolerated states/sec regression for --check-bench "
                        "(default 0.05 = 5%%)")
    m.set_defaults(func=cmd_metrics)

    b = sub.add_parser("bounds", help="Section 4.4 size-bound table")
    b.add_argument("--p", type=int, default=None)
    b.add_argument("--b", type=int, default=None)
    b.add_argument("--v", type=int, default=None)
    b.set_defaults(func=cmd_bounds)

    return ap


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
