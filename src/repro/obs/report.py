"""Self-contained run reports and cross-run trend tables.

``repro report`` renders two kinds of document, as markdown or as a
single-file HTML page (no external assets — it attaches to a CI
artifact or an email as-is):

* a **run report** for one trace (or flight dump): verdict header,
  the hierarchical span tree, shard balance, reduction/POR
  effectiveness, and every recovery/forensic event the trace carries;
* **trend tables** across runs: the ledger grouped by search
  provenance hash (is this exact search getting faster? has it ever
  flipped verdict?) and the ``BENCH_verification.json`` trajectory.

Everything here is a pure function of already-validated inputs —
malformed traces/ledgers raise before rendering starts, which the CLI
maps to exit code 2.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path
from typing import List, Optional, Sequence, Union

from .bench import RunSummary, summarize_trace
from .ledger import LedgerEntry, group_by_hash
from .metrics import format_span_tree
from .trace import read_trace

__all__ = [
    "Section",
    "run_report_sections",
    "trend_sections",
    "render_markdown",
    "render_html",
    "render_report",
]

#: forensic / lifecycle events surfaced verbatim in the run report
_NOTABLE_EVENTS = (
    "worker_died",
    "round_retry",
    "recovered",
    "checkpoint_saved",
    "degrade_stage",
    "fault_activated",
    "violation_found",
)


class Section:
    """One report section: a title plus a table and/or preformatted
    text (the renderers turn it into markdown or HTML)."""

    def __init__(
        self,
        title: str,
        *,
        headers: Optional[Sequence[str]] = None,
        rows: Optional[Sequence[Sequence[object]]] = None,
        text: Optional[str] = None,
        prose: Optional[str] = None,
    ) -> None:
        self.title = title
        self.headers = list(headers) if headers is not None else None
        self.rows = [list(r) for r in rows] if rows is not None else None
        self.text = text
        self.prose = prose


def _fmt(v: object) -> str:
    if v is None:
        return "—"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


# ----------------------------------------------------------------------
# run report
# ----------------------------------------------------------------------


def run_report_sections(events: List[dict]) -> List[Section]:
    """Sections for one run's validated trace events."""
    summary: RunSummary = summarize_trace(events)
    sections: List[Section] = []

    head_rows = [
        ("protocol", summary.protocol or "(unknown)"),
        ("verdict", summary.verdict),
        ("complete", summary.complete),
        ("states", summary.states),
        ("elapsed", f"{summary.elapsed_s:.3f}s"),
        (
            "throughput",
            f"{summary.states_per_sec:.0f} states/s"
            if summary.states_per_sec is not None
            else None,
        ),
        ("workers", summary.workers),
        ("reduce", summary.reduce),
        ("por", summary.por),
        ("trace events", summary.events),
    ]
    sections.append(Section("Run", headers=["field", "value"], rows=head_rows))

    if summary.has_snapshot and summary.snapshot.timers:
        sections.append(
            Section(
                "Span tree",
                text=format_span_tree(summary.snapshot.timers),
                prose=(
                    "Hierarchical profiler spans: `total` includes children, "
                    "`self` is the span's own time (subtree self times sum "
                    "to the root total)."
                ),
            )
        )

    if summary.shards:
        total = sum(s.get("states", 0) for s in summary.shards) or 1
        rows = [
            (
                s.get("shard"),
                s.get("states"),
                f"{100.0 * s.get('states', 0) / total:.1f}%",
                s.get("transitions"),
                s.get("interned_states"),
                s.get("peak_frontier"),
            )
            for s in summary.shards
        ]
        sections.append(
            Section(
                "Shard balance",
                headers=["shard", "states", "share", "transitions", "interned", "peak frontier"],
                rows=rows,
                prose=(
                    "Stable-hash sharding: share imbalance is workload "
                    "structure, not scheduling noise (the split is "
                    "deterministic per worker count)."
                ),
            )
        )

    gauges = summary.snapshot.gauges if summary.has_snapshot else {}
    eff_rows = []
    if any(k.startswith("reduction.") for k in gauges):
        red_states = gauges.get("reduction.states", 0)
        hits = gauges.get("reduction.orbit_hits", 0)
        eff_rows.append(("reduction: canonicalizations", red_states))
        eff_rows.append(("reduction: orbit hits", hits))
        if red_states:
            eff_rows.append(("reduction: hit rate", f"{100.0 * hits / red_states:.1f}%"))
        eff_rows.append(("reduction: canon time", f"{gauges.get('reduction.canon_s', 0)}s"))
    if any(k.startswith("por.") for k in gauges):
        ample = gauges.get("por.ample_hits", 0)
        eff_rows.append(("por: ample expansions", ample))
        eff_rows.append(("por: steps deferred", gauges.get("por.deferred", 0)))
        eff_rows.append(("por: full-expansion fallbacks", gauges.get("por.fallbacks", 0)))
    if eff_rows:
        sections.append(
            Section(
                "Reduction / POR effectiveness",
                headers=["metric", "value"],
                rows=eff_rows,
            )
        )

    notable = [e for e in events if e["ev"] in _NOTABLE_EVENTS]
    if notable:
        rows = [
            (
                e["seq"],
                e["ev"],
                ", ".join(
                    f"{k}={_fmt(v)}"
                    for k, v in sorted(e.items())
                    if k not in ("ev", "ts", "seq")
                ),
            )
            for e in notable
        ]
        sections.append(
            Section(
                "Recovery & forensic events",
                headers=["seq", "event", "detail"],
                rows=rows,
            )
        )

    return sections


# ----------------------------------------------------------------------
# cross-run trends
# ----------------------------------------------------------------------


def trend_sections(
    entries: Sequence[LedgerEntry],
    bench_record: Optional[dict] = None,
) -> List[Section]:
    """Trend tables from ledger entries and/or a benchmark record."""
    sections: List[Section] = []

    if entries:
        rows = []
        for h, group in group_by_hash(entries).items():
            first, last = group[0], group[-1]
            prov = last.provenance
            verdicts = {e.verdict for e in group}
            label = str(prov.get("protocol", "?"))
            knobs = "/".join(
                str(prov.get(k, "?")) for k in ("mode", "strategy", "reduce", "por")
            )
            best = min((e.elapsed_s for e in group if e.elapsed_s > 0), default=0.0)
            trend = (
                f"{first.elapsed_s:.3g}s → {last.elapsed_s:.3g}s"
                if len(group) > 1
                else f"{last.elapsed_s:.3g}s"
            )
            rows.append(
                (
                    h[:12],
                    label,
                    knobs,
                    len(group),
                    last.verdict if len(verdicts) == 1 else "MIXED: " + ", ".join(sorted(verdicts)),
                    last.states,
                    f"{best:.3g}s",
                    trend,
                )
            )
        sections.append(
            Section(
                "Ledger runs by search hash",
                headers=["hash", "protocol", "mode/strategy/reduce/por", "runs", "verdict", "states", "best", "elapsed trend"],
                rows=rows,
                prose=(
                    "One row per search provenance hash (workers and chaos "
                    "are run policy — excluded). A MIXED verdict or varying "
                    "state count inside one hash would mean the engines "
                    "broke their determinism contract."
                ),
            )
        )

    if bench_record:
        current = bench_record.get("current", {}).get("workloads", {})
        if current:
            rows = [
                (
                    name,
                    w.get("states"),
                    f"{w.get('seconds', 0):.3g}s",
                    f"{w['states'] / w['seconds']:.0f}"
                    if w.get("seconds")
                    else "—",
                )
                for name, w in sorted(current.items())
            ]
            sections.append(
                Section(
                    "Benchmark workloads (current)",
                    headers=["workload", "states", "seconds", "states/s"],
                    rows=rows,
                )
            )
        runs = bench_record.get("runs", [])
        if runs:
            rows = [
                (
                    r.get("recorded_at"),
                    r.get("workload"),
                    r.get("states"),
                    r.get("seconds"),
                    r.get("states_per_sec"),
                    r.get("workers"),
                )
                for r in runs
            ]
            sections.append(
                Section(
                    "Recorded one-off runs",
                    headers=["recorded", "workload", "states", "seconds", "states/s", "workers"],
                    rows=rows,
                )
            )

    return sections


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------


def render_markdown(title: str, sections: List[Section]) -> str:
    out: List[str] = [f"# {title}", ""]
    for s in sections:
        out.append(f"## {s.title}")
        out.append("")
        if s.prose:
            out.append(s.prose)
            out.append("")
        if s.headers is not None and s.rows is not None:
            out.append("| " + " | ".join(s.headers) + " |")
            out.append("|" + "|".join(" --- " for _ in s.headers) + "|")
            for row in s.rows:
                out.append("| " + " | ".join(_fmt(v) for v in row) + " |")
            out.append("")
        if s.text:
            out.append("```")
            out.append(s.text)
            out.append("```")
            out.append("")
    return "\n".join(out).rstrip() + "\n"


_HTML_STYLE = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', Roboto, sans-serif;
       max-width: 60rem; margin: 2rem auto; padding: 0 1rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #4a4e69; padding-bottom: .3rem; }
h2 { color: #4a4e69; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #c9cbd8; padding: .25rem .6rem; text-align: left; }
th { background: #f2f3f7; }
pre { background: #f7f7fa; border: 1px solid #e1e2ea; padding: .7rem;
      overflow-x: auto; }
p.prose { color: #555; font-style: italic; }
"""


def render_html(title: str, sections: List[Section]) -> str:
    esc = _html.escape
    out: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset=\"utf-8\">",
        f"<title>{esc(title)}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{esc(title)}</h1>",
    ]
    for s in sections:
        out.append(f"<h2>{esc(s.title)}</h2>")
        if s.prose:
            out.append(f"<p class=\"prose\">{esc(s.prose)}</p>")
        if s.headers is not None and s.rows is not None:
            out.append("<table><thead><tr>")
            out.extend(f"<th>{esc(h)}</th>" for h in s.headers)
            out.append("</tr></thead><tbody>")
            for row in s.rows:
                out.append(
                    "<tr>" + "".join(f"<td>{esc(_fmt(v))}</td>" for v in row) + "</tr>"
                )
            out.append("</tbody></table>")
        if s.text:
            out.append(f"<pre>{esc(s.text)}</pre>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------


def render_report(
    *,
    trace_path: Optional[str] = None,
    ledger_entries: Optional[Sequence[LedgerEntry]] = None,
    bench_path: Optional[Union[str, Path]] = None,
    fmt: str = "md",
    title: Optional[str] = None,
) -> str:
    """Build a report from whichever sources are given.

    ``trace_path`` contributes the single-run sections (torn final
    lines are tolerated — a flight dump or crashed trace still
    renders); ``ledger_entries`` and ``bench_path`` contribute the
    trend sections.  ``fmt`` is ``"md"`` or ``"html"``.
    """
    sections: List[Section] = []
    if title is None:
        title = "Verification run report" if trace_path else "Verification trends"
    if trace_path is not None:
        events = read_trace(trace_path, allow_torn_tail=True)
        sections.extend(run_report_sections(events))
    bench_record = None
    if bench_path is not None and Path(bench_path).exists():
        bench_record = json.loads(Path(bench_path).read_text())
    if ledger_entries or bench_record:
        sections.extend(trend_sections(ledger_entries or [], bench_record))
    if fmt == "html":
        return render_html(title, sections)
    return render_markdown(title, sections)
