"""The ablation switches must never change verdicts — only state
counts."""

import pytest

from repro.memory import (
    BuggyMSIProtocol,
    SerialMemory,
    StoreBufferProtocol,
    store_buffer_st_order,
)
from repro.modelcheck.product import explore_product

ABLATIONS = [
    {"canonical_ids": False},
    {"eager_free": False},
    {"unpin_heads": False},
    {"canonical_ids": False, "eager_free": False, "unpin_heads": False},
]


@pytest.mark.parametrize("kw", ABLATIONS, ids=lambda k: "+".join(sorted(k)))
def test_sc_verdict_unchanged(kw):
    base = explore_product(SerialMemory(p=2, b=1, v=1), mode="fast")
    res = explore_product(SerialMemory(p=2, b=1, v=1), mode="fast", max_states=50_000, **kw)
    assert res.ok == base.ok is True
    assert res.stats.states >= base.stats.states


@pytest.mark.parametrize("kw", ABLATIONS, ids=lambda k: "+".join(sorted(k)))
def test_violation_verdict_unchanged(kw):
    res = explore_product(
        BuggyMSIProtocol(p=2, b=1, v=1), mode="fast", max_states=50_000, **kw
    )
    assert not res.ok
    assert res.counterexample is not None


def test_ablations_apply_in_full_mode_too():
    res = explore_product(
        SerialMemory(p=1, b=1, v=1), mode="full", eager_free=False, max_states=20_000
    )
    assert res.ok


def test_store_buffer_violation_found_without_eager_free():
    res = explore_product(
        StoreBufferProtocol(p=2, b=2, v=1),
        store_buffer_st_order(),
        mode="fast",
        eager_free=False,
        max_states=100_000,
    )
    assert not res.ok and res.counterexample is not None
