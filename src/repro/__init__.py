"""repro — a full reproduction of *Automatable Verification of
Sequential Consistency* (Condon & Hu, SPAA 2001).

The library implements the paper's constraint-graph verification
method end to end: streamable bounded-bandwidth graph descriptors, the
finite-state cycle and edge-annotation checkers, tracking-label
machinery for inheritance edges, ST-order generators (including the
Lazy-Caching one), the witness observer, and an explicit-state model
checker that ties them together — plus a zoo of memory-system
protocols to verify (serial memory, MSI, MESI, a directory protocol,
Lazy Caching, and two intentionally non-SC designs).

Quick start::

    from repro import verify_protocol
    from repro.memory import MSIProtocol

    result = verify_protocol(MSIProtocol(p=2, b=1, v=2))
    print(result.summary())   # SEQUENTIALLY CONSISTENT (in Γ)
"""

from .core import (
    BOTTOM,
    LD,
    ST,
    Checker,
    ConstraintGraph,
    CycleChecker,
    EdgeKind,
    InternalAction,
    Load,
    Observer,
    Operation,
    Protocol,
    RealTimeSTOrder,
    Store,
    Tracking,
    Transition,
    WriteOrderSTOrder,
    check_run,
    find_serial_reordering,
    is_sequentially_consistent_trace,
    is_serial_trace,
    verify_protocol,
)

__version__ = "1.0.0"

__all__ = [
    "BOTTOM", "LD", "ST", "Load", "Store", "Operation", "InternalAction",
    "Protocol", "Tracking", "Transition",
    "ConstraintGraph", "EdgeKind",
    "Checker", "CycleChecker", "Observer",
    "RealTimeSTOrder", "WriteOrderSTOrder",
    "verify_protocol", "check_run",
    "is_serial_trace", "find_serial_reordering",
    "is_sequentially_consistent_trace",
    "__version__",
]
