"""E-pdl — the §4.1 automation claim, measured.

Protocols written in the description language get tracking labels for
free; the table shows that DSL protocols verify identically to their
hand-written twins (trace-equivalent, same joint-state counts) and
what the DSL's interpretive overhead costs in wall time.
"""

import time

from repro.automata import traces_equivalent
from repro.core.verify import verify_protocol
from repro.memory import MSIProtocol, SerialMemory
from repro.pdl import msi_spec, serial_spec, two_level_spec
from repro.util import format_table


def test_dsl_vs_handwritten(benchmark, show):
    pairs = [
        ("SerialMemory", serial_spec(p=2, b=1, v=1), SerialMemory(p=2, b=1, v=1)),
        ("MSI", msi_spec(p=2, b=1, v=1), MSIProtocol(p=2, b=1, v=1)),
    ]
    rows = []

    def run_all():
        rows.clear()
        for name, dsl, hand in pairs:
            eq = bool(traces_equivalent(dsl, hand, max_states=200_000))
            t0 = time.perf_counter()
            r_dsl = verify_protocol(dsl)
            t_dsl = time.perf_counter() - t0
            t0 = time.perf_counter()
            r_hand = verify_protocol(hand)
            t_hand = time.perf_counter() - t0
            assert r_dsl.sequentially_consistent and r_hand.sequentially_consistent
            rows.append(
                (
                    name,
                    "yes" if eq else "NO",
                    r_dsl.stats.states,
                    r_hand.stats.states,
                    f"{t_dsl:.2f}s",
                    f"{t_hand:.2f}s",
                    f"{t_dsl / max(t_hand, 1e-9):.1f}x",
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    show(
        format_table(
            ["protocol", "trace-equivalent", "DSL states", "hand states",
             "DSL time", "hand time", "overhead"],
            rows,
            title="DSL protocols (automatic tracking labels) vs hand-written",
        )
    )
    assert all(r[1] == "yes" for r in rows)
    assert all(r[2] == r[3] for r in rows)  # identical joint-state counts


def test_two_level_hierarchy_verification(benchmark, show):
    res = benchmark.pedantic(
        lambda: verify_protocol(two_level_spec(p=2, b=1, v=1)), rounds=1, iterations=1
    )
    show(
        format_table(
            ["metric", "value"],
            [
                ("protocol", "two-level cache hierarchy (DSL, 6 rules)"),
                ("verdict", res.verdict),
                ("joint states", res.stats.states),
                ("max live nodes", res.stats.max_live_nodes),
            ],
            title="A protocol written purely in the DSL, verified end to end",
        )
    )
    assert res.sequentially_consistent
