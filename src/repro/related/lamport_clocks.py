"""Logical-clock verification in the style of Plakal et al. (SPAA'98).

The paper credits the *Lamport clocks* approach as its inspiration and
contrasts with it: logical clocks certify a run by assigning each
operation an (unbounded) timestamp such that ordering the operations
by timestamp yields a serial trace, whereas the constraint-graph
method keeps only a bounded window.

This module implements the clock approach for per-run checking so the
contrast is measurable:

* :func:`assign_clocks` — timestamps from the witness graph: each
  operation's clock is its longest-path depth over the same po / STo /
  inh / forced edges the observer would emit (computed offline from
  tracking information, no window bound).  Clock assignment succeeds
  iff the graph is acyclic — Lemma 3.1 in timestamp clothing.
* :class:`ClockChecker` — a streaming per-run checker that keeps a
  clock per *operation still relevant* and, unlike the paper's
  observer, never forgets sources: its state grows with the run
  (the benchmark shows clock values and table sizes growing without
  bound while the observer's window stays flat).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.constraint_graph import ConstraintGraph, EdgeKind
from ..core.descriptor import decode
from ..core.observer import Observer
from ..core.operations import Action
from ..core.protocol import Protocol
from ..core.storder import STOrderGenerator
from ..graphs import CycleError, topological_sort

__all__ = ["ClockAssignment", "assign_clocks", "ClockChecker", "check_run_with_clocks"]


@dataclass
class ClockAssignment:
    """Result of timestamping one run's operations."""

    ok: bool
    clocks: Dict[int, int]  #: trace index (1-based) -> timestamp
    reason: Optional[str] = None

    @property
    def max_clock(self) -> int:
        return max(self.clocks.values(), default=0)


def _witness_graph(
    protocol: Protocol, run, st_order: Optional[STOrderGenerator]
) -> Tuple[ConstraintGraph, bool]:
    """The observer's witness graph for a run, decoded in full."""
    observer = Observer(protocol, st_order.copy() if st_order is not None else None)
    state = protocol.initial_state()
    syms = []
    for action in run:
        for t in protocol.transitions(state):
            if t.action == action:
                break
        else:
            raise ValueError(f"action {action!r} not enabled")
        syms.extend(observer.on_transition(t))
        state = t.state
    labelled = decode(syms, strict=True)
    cg = ConstraintGraph(labelled.node_labels)
    for (u, v) in labelled.graph.edges():
        cg.add_edge(u, v, labelled.graph.label(u, v) or EdgeKind.NONE)
    return cg, protocol.is_quiescent(state)


def assign_clocks(
    protocol: Protocol,
    run,
    st_order: Optional[STOrderGenerator] = None,
) -> ClockAssignment:
    """Timestamp a run's operations à la Lamport clocks.

    Each operation's clock is one more than the maximum clock of its
    predecessors in the witness graph (longest-path depth).  The
    assignment exists iff the graph is acyclic; ordering by
    (clock, trace index) then gives a serial reordering.
    """
    cg, _quiescent = _witness_graph(protocol, run, st_order)
    try:
        order = topological_sort(cg.graph)
    except CycleError:
        return ClockAssignment(False, {}, "cycle: no consistent timestamps exist")
    clocks: Dict[int, int] = {}
    for node in order:
        preds = cg.graph.predecessors(node)
        clocks[node] = 1 + max((clocks[p] for p in preds), default=0)
    return ClockAssignment(True, clocks)


def serial_order_from_clocks(assignment: ClockAssignment) -> List[int]:
    """The serial reordering induced by the timestamps."""
    return sorted(assignment.clocks, key=lambda i: (assignment.clocks[i], i))


class ClockChecker:
    """Streaming clock maintenance with *unbounded* state.

    Mirrors what a logical-clock run checker must retain: a timestamp
    for every store whose value may still be read, for every block's
    serialisation frontier, and for each processor's last operation —
    but, with no bandwidth analysis, it conservatively keeps every
    store's clock forever.  ``table_size`` therefore grows linearly in
    the number of stores, which is the contrast the paper draws with
    its bounded observer.
    """

    def __init__(self, protocol: Protocol, st_order: Optional[STOrderGenerator] = None):
        self.protocol = protocol
        self._observer_like = Observer(
            protocol, st_order.copy() if st_order is not None else None
        )
        self._state = protocol.initial_state()
        # full history of decoded symbols (unbounded, deliberately)
        self._symbols: List = []
        self.rejected: Optional[str] = None

    def feed_action(self, action: Action) -> bool:
        if self.rejected is not None:
            return False
        for t in self.protocol.transitions(self._state):
            if t.action == action:
                break
        else:
            raise ValueError(f"action {action!r} not enabled")
        self._symbols.extend(self._observer_like.on_transition(t))
        self._state = t.state
        return True

    def clocks(self) -> ClockAssignment:
        labelled = decode(self._symbols, strict=True)
        g = labelled.graph
        try:
            order = topological_sort(g)
        except CycleError:
            return ClockAssignment(False, {}, "cycle")
        out: Dict[int, int] = {}
        for node in order:
            out[node] = 1 + max((out[p] for p in g.predecessors(node)), default=0)
        return ClockAssignment(True, out)

    @property
    def table_size(self) -> int:
        """Operations the clock table retains (grows without bound)."""
        return sum(1 for s in self._symbols if type(s).__name__ == "NodeSym")


def check_run_with_clocks(
    protocol: Protocol,
    run,
    st_order: Optional[STOrderGenerator] = None,
) -> ClockAssignment:
    """One-shot per-run verdict via clock assignment."""
    return assign_clocks(protocol, run, st_order)
