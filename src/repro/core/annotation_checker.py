"""The finite-state edge-annotation checker of Theorem 3.1.

Where :class:`~repro.core.cycle_checker.CycleChecker` verifies
acyclicity, this automaton verifies that the streamed graph's edges
satisfy the five edge-annotation constraints of Section 3.1 — i.e.
that the graph really is a *constraint graph* for the trace spelled by
its node labels.  Together (see :mod:`repro.core.checker`) they decide
"acyclic constraint graph" in finite state.

Faithful to the paper's construction:

* per-node ``program-edge-in/out`` and ``ST-edge-in/out`` bits, with
  head/tail counting as nodes are removed from the active window
  (constraints 2 and 3);
* a per-LD ``inheritance-edge-in`` bit with label compatibility checks
  (constraint 4);
* the *deferred-node* discipline for forced edges (constraint 5):
  a LD that inherited from ST ``i`` stays tracked — even after its
  descriptor ID is recycled — until either its forced edge to ``i``'s
  STo-successor ``k`` is seen, or a later LD of the same processor
  inheriting from the same ``i`` supersedes it (the program-order-path
  escape hatch of constraint 5), or ``i`` retires with no STo
  successor (then no ``k`` ever exists and the obligation is vacuous);
* ⊥-loads are held against the eventual *head* of their block's ST
  order (constraint 5(b)).

The checker is a safety automaton plus an end-of-string acceptance
test: :meth:`feed` performs every check that can be decided eagerly
(and rejects permanently on failure), while :meth:`end_violations`
reports the conditions that are only judgements about a *completed*
string (totality of the po/STo orders, unmet obligations).  The model
checker evaluates the end test at quiescent protocol states.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .constraint_graph import EdgeKind
from .descriptor import AddIdSym, EdgeSym, FreeIdSym, NodeSym, Symbol
from .operations import BOTTOM, Load, Operation, Store

__all__ = ["AnnotationChecker", "parse_edge_kind"]

_KIND_NAMES = {
    "po": EdgeKind.PO,
    "STo": EdgeKind.STO,
    "sto": EdgeKind.STO,
    "inh": EdgeKind.INH,
    "forced": EdgeKind.FORCED,
    "plain": EdgeKind.NONE,
}


def parse_edge_kind(label) -> EdgeKind:
    """Normalise an edge label: ``EdgeKind`` passes through, ``None``
    means no annotations, and strings use the paper's hyphenated names
    (``po-STo``, ``po-inh``, ...)."""
    if label is None:
        return EdgeKind.NONE
    if isinstance(label, EdgeKind):
        return label
    if isinstance(label, str):
        kind = EdgeKind.NONE
        for part in label.split("-"):
            if part not in _KIND_NAMES:
                raise ValueError(f"unknown edge annotation {part!r}")
            kind |= _KIND_NAMES[part]
        return kind
    raise TypeError(f"cannot interpret edge label {label!r}")


#: sentinel for "this ST's STo-successor existed but has left the
#: active window" — any new inheritance from the ST is then doomed
_GONE = -1


@dataclass
class _Node:
    """Checker-side record of one graph node."""

    tid: int  # creation order; doubles as the trace-order rank
    op: Optional[Operation]
    ids: Set[int] = field(default_factory=set)
    # edge partners (tids); None = no such edge yet.  Remembering the
    # partner (not just a bit) makes re-mentions of the *same* edge
    # idempotent — a descriptor denotes a set of edges — while a second
    # *distinct* edge still violates the totality constraints.
    po_in: Optional[int] = None
    po_out: Optional[int] = None
    sto_in: Optional[int] = None
    sto_out: Optional[int] = None
    src: Optional[int] = None  # tid of inh source (LD only)
    target: Optional[int] = None  # tid of forced-edge target, once known
    forced_to: Set[int] = field(default_factory=set)  # tids
    retired: bool = False

    @property
    def is_load(self) -> bool:
        return isinstance(self.op, Load)

    @property
    def is_store(self) -> bool:
        return isinstance(self.op, Store)


class AnnotationChecker:
    """Streaming edge-annotation checks over a k-graph descriptor.

    Parameters
    ----------
    strict:
        Reject symbols that reference unheld IDs (a well-formed
        observer never emits them).  With ``strict=False`` they are
        ignored, matching the formal descriptor semantics.
    require_labels:
        Reject nodes without an operation label (constraint graphs
        label every node).
    """

    def __init__(self, *, strict: bool = True, require_labels: bool = True):
        self.strict = strict
        self.require_labels = require_labels
        self.rejected: Optional[str] = None

        self._next_tid = 1
        self._nodes: Dict[int, _Node] = {}  # tid -> record (live/deferred/shadow)
        self._owner: Dict[int, int] = {}  # descriptor ID -> tid

        # constraint 2/3 totality accounting
        self._proc_seen: Set[int] = set()
        self._block_seen: Set[int] = set()
        self._po_heads_retired: Dict[int, int] = {}  # proc -> count (capped 2)
        self._po_tails_retired: Dict[int, int] = {}
        self._sto_tails_retired: Dict[int, int] = {}  # block -> count
        self._sto_head_shadow: Dict[int, int] = {}  # block -> tid of retired head

        # constraint 5 machinery
        self._sto_succ: Dict[int, int] = {}  # ST tid -> successor tid or _GONE
        self._pending_load: Dict[Tuple[int, int], int] = {}  # (proc, src tid) -> LD tid
        self._pending_bottom: Dict[Tuple[int, int], int] = {}  # (proc, block) -> LD tid
        self._obliged_by: Dict[int, Set[int]] = {}  # target tid -> pending LD tids

    # ------------------------------------------------------------------
    def _reject(self, reason: str) -> None:
        if self.rejected is None:
            self.rejected = reason

    @property
    def accepts_so_far(self) -> bool:
        return self.rejected is None

    # ------------------------------------------------------------------
    # reference bookkeeping / garbage collection
    # ------------------------------------------------------------------
    def _is_referenced(self, tid: int) -> bool:
        if tid in self._pending_load.values():
            return True
        if tid in self._pending_bottom.values():
            return True
        if self._obliged_by.get(tid):
            return True
        if tid in self._sto_head_shadow.values():
            return True
        return False

    def _gc(self, tid: int) -> None:
        """Drop a retired, unreferenced record; scrub its tid from the
        bounded forced_to sets so state stays finite."""
        node = self._nodes.get(tid)
        if node is None or not node.retired or self._is_referenced(tid):
            return
        # anything retired and unreferenced can go; scrub dangling tids
        # from forced_to sets (they can never match a future target)
        del self._nodes[tid]
        self._obliged_by.pop(tid, None)
        for other in self._nodes.values():
            other.forced_to.discard(tid)

    def _release_pending_load(self, key: Tuple[int, int]) -> None:
        tid = self._pending_load.pop(key, None)
        if tid is None:
            return
        node = self._nodes.get(tid)
        if node is not None and node.target is not None:
            s = self._obliged_by.get(node.target)
            if s is not None:
                s.discard(tid)
                if not s:
                    del self._obliged_by[node.target]
        if node is not None and node.retired:
            self._gc(tid)

    def _release_pending_bottom(self, key: Tuple[int, int]) -> None:
        tid = self._pending_bottom.pop(key, None)
        if tid is None:
            return
        node = self._nodes.get(tid)
        if node is not None and node.retired:
            self._gc(tid)

    # ------------------------------------------------------------------
    # node retirement (descriptor ID-set became empty)
    # ------------------------------------------------------------------
    def _retire(self, tid: int) -> None:
        node = self._nodes[tid]
        node.retired = True
        op = node.op
        if op is None:
            self._gc(tid)
            return
        # constraint 2 head/tail accounting
        if node.po_in is None:
            c = self._po_heads_retired.get(op.proc, 0) + 1
            self._po_heads_retired[op.proc] = min(c, 2)
            if c >= 2:
                self._reject(
                    f"processor {op.proc}: two nodes retired without an "
                    f"incoming program-order edge"
                )
        if node.po_out is None:
            c = self._po_tails_retired.get(op.proc, 0) + 1
            self._po_tails_retired[op.proc] = min(c, 2)
            if c >= 2:
                self._reject(
                    f"processor {op.proc}: two nodes retired without an "
                    f"outgoing program-order edge"
                )
        if node.is_load:
            if op.value != BOTTOM and node.src is None:
                self._reject(f"LD node retired without an inheritance edge ({op!r})")
        if node.is_store:
            if node.sto_in is None:
                if op.block in self._sto_head_shadow:
                    self._reject(
                        f"block {op.block}: two STs retired without an "
                        f"incoming ST-order edge"
                    )
                else:
                    self._sto_head_shadow[op.block] = tid
            if node.sto_out is None:
                c = self._sto_tails_retired.get(op.block, 0) + 1
                self._sto_tails_retired[op.block] = min(c, 2)
                if c >= 2:
                    self._reject(
                        f"block {op.block}: two STs retired without an "
                        f"outgoing ST-order edge"
                    )
                # this ST will never have a STo successor; pending loads
                # inheriting from it carry no (vacuous) 5(a) obligation
                for key in [k for k in self._pending_load if k[1] == tid]:
                    self._release_pending_load(key)
            # loads still obliged to a forced edge targeting this ST can
            # never get one (no ID to address it by)
            if self._obliged_by.get(tid):
                self._reject(
                    f"ST node retired while forced-edge obligations to it "
                    f"were outstanding ({op!r})"
                )
            # inheriting from a ST whose successor has left the window is
            # doomed; mark the successor as gone
            for st, succ in list(self._sto_succ.items()):
                if succ == tid:
                    self._sto_succ[st] = _GONE
        self._gc(tid)

    # ------------------------------------------------------------------
    # symbol processing
    # ------------------------------------------------------------------
    def _take_id(self, ident: int) -> None:
        """Descriptor ID ``ident`` is being re-purposed."""
        holder = self._owner.pop(ident, None)
        if holder is None:
            return
        node = self._nodes[holder]
        node.ids.discard(ident)
        if not node.ids:
            self._retire(holder)

    def feed(self, sym: Symbol) -> bool:
        if self.rejected is not None:
            return False
        if isinstance(sym, NodeSym):
            self._feed_node(sym)
        elif isinstance(sym, FreeIdSym):
            self._take_id(sym.id)
        elif isinstance(sym, AddIdSym):
            self._feed_add_id(sym)
        elif isinstance(sym, EdgeSym):
            self._feed_edge(sym)
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a descriptor symbol: {sym!r}")
        return self.rejected is None

    def feed_all(self, symbols: Iterable[Symbol]) -> bool:
        ok = self.rejected is None
        for s in symbols:
            ok = self.feed(s)
            if not ok:
                break
        return ok

    def _feed_node(self, sym: NodeSym) -> None:
        self._take_id(sym.id)
        tid = self._next_tid
        self._next_tid += 1
        op = sym.label
        if op is None and self.require_labels:
            self._reject("node without an operation label")
        if op is not None and not isinstance(op, Operation):
            self._reject(f"node label {op!r} is not a LD/ST operation")
            op = None
        node = _Node(tid=tid, op=op, ids={sym.id})
        self._nodes[tid] = node
        self._owner[sym.id] = tid
        if op is not None:
            self._proc_seen.add(op.proc)
            if isinstance(op, Store):
                if op.value == BOTTOM:
                    self._reject(f"ST of ⊥ is not an operation: {op!r}")
                self._block_seen.add(op.block)
            elif isinstance(op, Load) and op.value == BOTTOM:
                # constraint 5(b): track the latest ⊥-load per
                # (processor, block); it supersedes any earlier one
                # (program-order path escape, as in 5(a))
                key = (op.proc, op.block)
                self._release_pending_bottom(key)
                self._pending_bottom[key] = tid

    def _feed_add_id(self, sym: AddIdSym) -> None:
        target = self._owner.get(sym.id)
        if sym.new_id != sym.id:
            self._take_id(sym.new_id)
        if target is None:
            if self.strict:
                self._reject(f"add-ID({sym.id},{sym.new_id}): ID {sym.id} unheld")
            return
        self._owner[sym.new_id] = target
        self._nodes[target].ids.add(sym.new_id)

    def _feed_edge(self, sym: EdgeSym) -> None:
        u_tid = self._owner.get(sym.src)
        v_tid = self._owner.get(sym.dst)
        if u_tid is None or v_tid is None:
            if self.strict:
                self._reject(f"edge ({sym.src},{sym.dst}) references an unheld ID")
            return
        try:
            kind = parse_edge_kind(sym.label)
        except (ValueError, TypeError) as exc:
            self._reject(str(exc))
            return
        u, v = self._nodes[u_tid], self._nodes[v_tid]
        if kind & EdgeKind.PO:
            self._edge_po(u, v)
        if kind & EdgeKind.STO:
            self._edge_sto(u, v)
        if kind & EdgeKind.INH:
            self._edge_inh(u, v)
        if kind & EdgeKind.FORCED:
            self._edge_forced(u, v)

    # -- constraint 2 ---------------------------------------------------
    def _edge_po(self, u: _Node, v: _Node) -> None:
        if u.op is None or v.op is None:
            self._reject("program-order edge on unlabelled node")
            return
        if u is v:
            self._reject("program-order self-loop")
            return
        if u.op.proc != v.op.proc:
            self._reject(
                f"program-order edge between processors {u.op.proc} and {v.op.proc}"
            )
            return
        if u.tid > v.tid:
            self._reject("program-order edge against trace order")
            return
        if u.po_out not in (None, v.tid):
            self._reject(f"second outgoing program-order edge from {u.op!r}")
            return
        if v.po_in not in (None, u.tid):
            self._reject(f"second incoming program-order edge into {v.op!r}")
            return
        u.po_out = v.tid
        v.po_in = u.tid

    # -- constraint 3 ---------------------------------------------------
    def _edge_sto(self, u: _Node, v: _Node) -> None:
        if not (u.is_store and v.is_store) or u.op is None or v.op is None:
            self._reject("ST-order edge must join two ST nodes")
            return
        if u is v:
            self._reject("ST-order self-loop")
            return
        if u.op.block != v.op.block:
            self._reject(
                f"ST-order edge between blocks {u.op.block} and {v.op.block}"
            )
            return
        if u.sto_out not in (None, v.tid):
            self._reject(f"second outgoing ST-order edge from {u.op!r}")
            return
        if v.sto_in not in (None, u.tid):
            self._reject(f"second incoming ST-order edge into {v.op!r}")
            return
        if u.sto_out == v.tid:
            return  # re-mention of the same edge: idempotent
        u.sto_out = v.tid
        v.sto_in = u.tid
        self._sto_succ[u.tid] = v.tid
        # every pending load inheriting from u now knows its target
        for (proc, src), ld_tid in list(self._pending_load.items()):
            if src != u.tid:
                continue
            ld = self._nodes[ld_tid]
            ld.target = v.tid
            if v.tid in ld.forced_to:
                self._release_pending_load((proc, src))
            else:
                self._obliged_by.setdefault(v.tid, set()).add(ld_tid)

    # -- constraint 4 + 5(a) obligations ---------------------------------
    def _edge_inh(self, u: _Node, v: _Node) -> None:
        if u.op is None or v.op is None:
            self._reject("inheritance edge on unlabelled node")
            return
        if u is v:
            self._reject("inheritance self-loop")
            return
        if not v.is_load:
            self._reject(f"inheritance edge into non-LD node {v.op!r}")
            return
        if v.op.value == BOTTOM:
            self._reject(f"inheritance edge into ⊥-load {v.op!r}")
            return
        if v.src is not None:
            if v.src == u.tid:
                return  # re-mention of the same edge: idempotent
            self._reject(f"second inheritance edge into {v.op!r}")
            return
        if not (u.is_store and u.op.block == v.op.block and u.op.value == v.op.value):
            self._reject(
                f"inheritance edge source {u.op!r} is not "
                f"ST(*,B{v.op.block},{v.op.value})"
            )
            return
        v.src = u.tid
        proc = v.op.proc
        # a later LD of the same processor inheriting from the same ST
        # supersedes the earlier one (the program-order escape of
        # constraint 5)
        self._release_pending_load((proc, u.tid))
        succ = self._sto_succ.get(u.tid)
        if succ == _GONE:
            self._reject(
                f"LD {v.op!r} inherits from a ST whose ST-order successor "
                f"has left the active window; its forced edge can no "
                f"longer be expressed"
            )
            return
        if succ is not None:
            v.target = succ
            if succ in v.forced_to:
                return  # already satisfied (forced edge preceded inh edge)
            self._pending_load[(proc, u.tid)] = v.tid
            self._obliged_by.setdefault(succ, set()).add(v.tid)
        else:
            self._pending_load[(proc, u.tid)] = v.tid

    def _edge_forced(self, u: _Node, v: _Node) -> None:
        u.forced_to.add(v.tid)
        if u.target is not None and u.target == v.tid:
            # obligation met; find and release the pending entry
            for key, tid in list(self._pending_load.items()):
                if tid == u.tid:
                    self._release_pending_load(key)

    # ------------------------------------------------------------------
    # forking
    # ------------------------------------------------------------------
    def fork(self) -> "AnnotationChecker":
        """Independent copy (for branching exploration)."""
        other = AnnotationChecker.__new__(AnnotationChecker)
        other.strict = self.strict
        other.require_labels = self.require_labels
        other.rejected = self.rejected
        other._next_tid = self._next_tid
        other._nodes = {
            tid: replace(n, ids=set(n.ids), forced_to=set(n.forced_to))
            for tid, n in self._nodes.items()
        }
        other._owner = dict(self._owner)
        other._proc_seen = set(self._proc_seen)
        other._block_seen = set(self._block_seen)
        other._po_heads_retired = dict(self._po_heads_retired)
        other._po_tails_retired = dict(self._po_tails_retired)
        other._sto_tails_retired = dict(self._sto_tails_retired)
        other._sto_head_shadow = dict(self._sto_head_shadow)
        other._sto_succ = dict(self._sto_succ)
        other._pending_load = dict(self._pending_load)
        other._pending_bottom = dict(self._pending_bottom)
        other._obliged_by = {t: set(s) for t, s in self._obliged_by.items()}
        return other

    # ------------------------------------------------------------------
    # end-of-string acceptance
    # ------------------------------------------------------------------
    def end_violations(self) -> List[str]:
        """Conditions that must hold if the descriptor ended now."""
        out: List[str] = []
        if self.rejected is not None:
            out.append(self.rejected)
            return out
        live = [n for n in self._nodes.values() if not n.retired]
        # constraint 4 on live nodes
        for n in live:
            if n.is_load and n.op is not None and n.op.value != BOTTOM and n.src is None:
                out.append(f"LD node without inheritance edge at end: {n.op!r}")
        # constraint 2 totality
        for proc in self._proc_seen:
            heads = self._po_heads_retired.get(proc, 0) + sum(
                1 for n in live if n.op is not None and n.op.proc == proc and n.po_in is None
            )
            if heads != 1:
                out.append(f"processor {proc}: {heads} program-order heads (need 1)")
        # constraint 3 totality
        for block in self._block_seen:
            heads = (1 if block in self._sto_head_shadow else 0) + sum(
                1
                for n in live
                if n.is_store and n.op is not None and n.op.block == block and n.sto_in is None
            )
            if heads != 1:
                out.append(f"block {block}: {heads} ST-order heads (need 1)")
        # constraint 5(a): assigned-but-unmet forced obligations
        for (proc, src), tid in self._pending_load.items():
            n = self._nodes[tid]
            if n.target is not None and n.target not in n.forced_to:
                out.append(
                    f"LD of processor {proc} inheriting from ST #{src} lacks "
                    f"its forced edge to the successor ST"
                )
        # constraint 5(b): ⊥-loads against their block's STo head
        for (proc, block), tid in self._pending_bottom.items():
            if block not in self._block_seen:
                continue
            n = self._nodes[tid]
            head = self._sto_head_shadow.get(block)
            if head is None:
                lives = [
                    m.tid
                    for m in live
                    if m.is_store and m.op is not None and m.op.block == block and m.sto_in is None
                ]
                head = lives[0] if len(lives) == 1 else None
            if head is None or head not in n.forced_to:
                out.append(
                    f"⊥-load of processor {proc} on block {block} lacks a "
                    f"forced edge to the first ST in ST order"
                )
        return out

    def accepts_at_end(self) -> bool:
        return not self.end_violations()

    # ------------------------------------------------------------------
    # canonical state (for product model checking)
    # ------------------------------------------------------------------
    def state_key(self, canon=None, perm=None) -> Tuple:
        # ``perm`` (a symmetry permutation; see engine/reduction.py)
        # asks for the key of the permuted checker state.  Trace IDs
        # and their creation-order ranks are permutation-invariant (a
        # permuted run creates the image of each node at the same
        # step), so only the sort-indexed payloads move: operation
        # labels, the proc/block parts of pending-obligation keys, and
        # the per-proc/per-block bookkeeping dictionaries.
        if self.rejected is not None:
            return ("REJECTED",)
        if canon is None:
            canon = {}
        cn = lambda i: canon.get(i, i)
        kept = sorted(self._nodes)  # tids in creation order
        rank = {tid: r for r, tid in enumerate(kept)}
        if perm is None:
            pop = lambda op: op
            pproc = pblock = lambda i: i
        else:
            pop = perm.op
            pproc = lambda i: perm.proc[i - 1]
            pblock = lambda i: perm.block[i - 1]

        def rk(tid: Optional[int]):
            if tid is None:
                return None
            if tid == _GONE:
                return _GONE
            return rank.get(tid, "?")

        node_part = tuple(
            (
                rank[tid],
                pop(self._nodes[tid].op),
                tuple(sorted(cn(i) for i in self._nodes[tid].ids)),
                rk(self._nodes[tid].po_in),
                rk(self._nodes[tid].po_out),
                rk(self._nodes[tid].sto_in),
                rk(self._nodes[tid].sto_out),
                rk(self._nodes[tid].src),
                rk(self._nodes[tid].target),
                tuple(sorted(rank.get(t, -2) for t in self._nodes[tid].forced_to)),
                self._nodes[tid].retired,
            )
            for tid in kept
        )
        return (
            node_part,
            tuple(
                sorted(((pproc(p), rk(s)), rk(t)) for (p, s), t in self._pending_load.items())
            ),
            tuple(
                sorted(
                    ((pproc(p), pblock(b)), rk(t))
                    for (p, b), t in self._pending_bottom.items()
                )
            ),
            tuple(sorted((rk(s), rk(t)) for s, t in self._sto_succ.items() if s in rank)),
            tuple(sorted(pproc(p) for p in self._proc_seen)),
            tuple(sorted(pblock(b) for b in self._block_seen)),
            tuple(sorted((pproc(p), c) for p, c in self._po_heads_retired.items())),
            tuple(sorted((pproc(p), c) for p, c in self._po_tails_retired.items())),
            tuple(sorted((pblock(b), c) for b, c in self._sto_tails_retired.items())),
            tuple(sorted((pblock(b), rk(t)) for b, t in self._sto_head_shadow.items())),
        )
