#!/usr/bin/env python3
"""Offline checking of recorded runs (the Section 5 testing scenario).

Reads the sample logs in ``examples/logs/`` — the format a simulator
or RTL testbench would emit — and judges each with the streaming
observer/checker.  Equivalent CLI:

    python -m repro check-run examples/logs/msi_session.run

Run:  python examples/check_run_logs.py
"""

from pathlib import Path

from repro.tracefile import check_run_file

LOGS = Path(__file__).parent / "logs"


def main() -> None:
    for path in sorted(LOGS.glob("*.run")):
        verdict = check_run_file(path.read_text())
        status = "OK " if verdict.ok else "BAD"
        print(f"[{status}] {path.name}: {verdict.verdict}")
        if not verdict.ok:
            from repro.core.descriptor import format_descriptor

            print("       witness descriptor:", format_descriptor(verdict.symbols))


if __name__ == "__main__":
    main()
